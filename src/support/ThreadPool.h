//===- support/ThreadPool.h - Minimal fixed-size worker pool --------------===//
///
/// \file
/// A small fixed-size thread pool for embarrassingly parallel work (the
/// static analyzer fans per-module analysis out across the dependency
/// closure). Tasks are plain std::function<void()>; wait() blocks until
/// every submitted task has finished. With one worker (or zero requested
/// threads on a single-core host) submit() degenerates to running the
/// task inline, so single-threaded behaviour is bit-for-bit the serial
/// code path with no thread machinery in the way.
///
/// Failure model: a task can *fail to run* — the `pool.task` fault point
/// models a dying worker, and a task body that throws is swallowed rather
/// than taking down the process. Either way the task is counted in
/// droppedCount() and wait() still returns; callers that must know
/// per-task completion keep their own done flags (see
/// StaticAnalyzer::analyzeProgram, which quarantines modules whose
/// analysis task never completed).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_THREADPOOL_H
#define JANITIZER_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace janitizer {

class ThreadPool {
public:
  /// Creates a pool with \p Threads workers. 0 means "one per hardware
  /// thread"; a request for one thread creates no workers at all (tasks
  /// run inline in submit()).
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task. Inline execution when the pool has no workers.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has completed (or was dropped).
  void wait();

  /// Number of worker threads (1 when tasks run inline).
  unsigned threadCount() const { return Workers.empty() ? 1u : static_cast<unsigned>(Workers.size()); }

  /// Tasks that did not run to completion: dropped by the `pool.task`
  /// fault point (worker-death model) or terminated by an escaped
  /// exception. Read after wait().
  size_t droppedCount() const;

  /// Resolves a --jobs style request: 0 -> hardware concurrency, never 0.
  static unsigned resolveJobs(unsigned Requested);

private:
  void workerLoop();
  /// Runs one task under the failure model; returns false when dropped.
  bool runTask(std::function<void()> &Task);

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mu;
  std::condition_variable WorkAvailable; ///< signals workers
  std::condition_variable AllDone;       ///< signals wait()
  size_t Pending = 0;                    ///< queued + running tasks
  size_t Dropped = 0;                    ///< tasks that failed to complete
  bool Stopping = false;
};

} // namespace janitizer

#endif // JANITIZER_SUPPORT_THREADPOOL_H
