//===- support/Cli.h - Shared checked CLI numeric parsing ------------------===//
///
/// \file
/// Strict numeric option parsing shared by the tools/ binaries. atoi-style
/// parsing silently turns "--jobs=abc" into 0 and wraps "--jobs=-1" to
/// 4294967295 worker threads; these helpers accept exactly the strings a
/// user could mean and reject everything else so the caller can print a
/// clear error and exit with the usage code.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_CLI_H
#define JANITIZER_SUPPORT_CLI_H

#include <optional>
#include <string>

namespace janitizer {

/// Parses \p S as a plain non-negative decimal integer that fits in
/// unsigned. Rejects empty input, signs (so "-1" never wraps), leading or
/// trailing whitespace, trailing junk, hex/octal prefixes, and overflow.
inline std::optional<unsigned> parseCliUnsigned(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  unsigned long long V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    V = V * 10 + static_cast<unsigned>(C - '0');
    if (V > 0xFFFFFFFFull)
      return std::nullopt;
  }
  return static_cast<unsigned>(V);
}

/// parseCliUnsigned with an inclusive [Min, Max] range check.
inline std::optional<unsigned> parseCliUnsigned(const std::string &S,
                                                unsigned Min, unsigned Max) {
  std::optional<unsigned> V = parseCliUnsigned(S);
  if (!V || *V < Min || *V > Max)
    return std::nullopt;
  return V;
}

} // namespace janitizer

#endif // JANITIZER_SUPPORT_CLI_H
