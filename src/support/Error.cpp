//===- support/Error.cpp --------------------------------------------------==//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace janitizer;

void janitizer::reportUnreachable(const char *Msg, const char *File,
                                  int Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

void janitizer::reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg.c_str());
  std::exit(1);
}
