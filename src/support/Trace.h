//===- support/Trace.h - Low-overhead pipeline tracing --------------------===//
///
/// \file
/// RAII trace spans over the whole static→rules→dynamic pipeline,
/// exported as Chrome `trace_event` JSON (load the file in
/// chrome://tracing or https://ui.perfetto.dev). A span names one unit of
/// pipeline work — a per-module analysis phase, a thread-pool task, a
/// cache read, a block translation, an edge check — and may carry
/// key/value arguments:
///
///     JZ_TRACE_SPAN("static.analyzeModule", {{"module", Mod.Name}});
///
/// Naming scheme: `<layer>.<operation>`, where the layer prefix (static,
/// pool, cache, dispatch, tool, jasan, jcfi) becomes the Chrome event
/// category, so one trace shows every layer of a run on a shared
/// timeline.
///
/// Cost contract (same discipline as FaultInjector): when tracing is not
/// armed, a span site costs one branch on a cached bool (relaxed atomic
/// load) — the argument list is not evaluated, no clock is read, no
/// memory is written. Armed, events are appended to *per-thread* buffers
/// (no shared lock on the record path; each buffer's own mutex is only
/// ever contended by the final export), so tracing a parallel analysis
/// does not serialize it. Buffers are bounded; overflowing events are
/// dropped and counted, never reallocated without bound.
///
/// Arming is programmatic (TraceCollector::instance().start()) or
/// environmental: JZ_TRACE=<path> arms at process start and writes the
/// JSON to <path> at exit, so any existing binary (tests, benches) can be
/// traced without a new flag.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_TRACE_H
#define JANITIZER_SUPPORT_TRACE_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace janitizer {

/// One key/value argument attached to a span ("module" -> "libjz.so").
/// Keys are string literals (spans are compiled-in sites); values are
/// owned strings computed only when tracing is armed.
struct TraceArg {
  const char *Key;
  std::string Value;
};

/// One recorded event, exposed for tests and the JSON writer. Instant
/// events have EndNs == StartNs.
struct TraceEvent {
  const char *Name = "";
  uint64_t StartNs = 0;
  uint64_t EndNs = 0;
  uint32_t Tid = 0;
  std::vector<TraceArg> Args;
};

class TraceCollector {
public:
  /// The process-wide collector. Intentionally leaked: per-thread buffers
  /// retire into it from thread_local destructors, which may run during
  /// process teardown.
  static TraceCollector &instance();

  /// Hot-path gate — a single relaxed atomic load. The whole tracing
  /// subsystem costs this much per site when nothing is armed.
  static bool armed() { return ArmedFlag.load(std::memory_order_relaxed); }

  /// Clears any previous trace and starts a new one (epoch = now).
  void start();

  /// Stops recording. Spans already open still record on close; export
  /// after the traced work has quiesced.
  void stop();

  /// Drops all recorded events (does not change armed state).
  void clear();

  /// Appends one completed span to the calling thread's buffer. Called
  /// from the armed path only.
  void record(const char *Name, uint64_t StartNs, uint64_t EndNs,
              std::vector<TraceArg> Args);

  /// Records a zero-duration event (cache eviction, violation, ...).
  /// Callers gate on armed() via JZ_TRACE_INSTANT.
  static void instant(const char *Name,
                      std::initializer_list<TraceArg> Args = {});

  /// Monotonic timestamp in nanoseconds.
  static uint64_t nowNs();

  /// Snapshot of every recorded event, sorted by (start, tid, name) so
  /// output is deterministic for a deterministic workload.
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON ("traceEvents" array of ph:"X"/"i" events,
  /// ts/dur in microseconds relative to start()).
  std::string toJson() const;

  /// Writes toJson() to \p Path (Recoverable error on I/O failure).
  Error writeJson(const std::string &Path) const;

  size_t eventCount() const;
  /// Events discarded because a thread buffer hit its bound.
  size_t droppedCount() const { return Dropped.load(std::memory_order_relaxed); }

  /// Bound on events buffered per thread; beyond it events are dropped
  /// and counted (a trace must never OOM the traced process).
  static constexpr size_t MaxEventsPerThread = 1u << 20;

private:
  TraceCollector() = default;

  struct ThreadBuffer;
  friend struct ThreadBuffer;
  ThreadBuffer &threadBuffer();
  void retire(ThreadBuffer *TB);

  mutable std::mutex Mu;               ///< guards Buffers/Retired/Epoch
  std::vector<ThreadBuffer *> Buffers; ///< live per-thread buffers
  std::vector<TraceEvent> Retired;     ///< events of exited threads
  uint64_t EpochNs = 0;
  uint32_t NextTid = 0;
  std::atomic<size_t> Dropped{0};
  static std::atomic<bool> ArmedFlag;
};

/// RAII span. Default-constructed inactive; open() (called by
/// JZ_TRACE_SPAN only when the collector is armed) stamps the start time
/// and captures the arguments; the destructor records the completed span.
class TraceSpan {
public:
  TraceSpan() = default;
  ~TraceSpan() {
    if (Active)
      close();
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  void open(const char *SpanName, std::initializer_list<TraceArg> SpanArgs = {}) {
    Name = SpanName;
    StartNs = TraceCollector::nowNs();
    Args.assign(SpanArgs.begin(), SpanArgs.end());
    Active = true;
  }

  bool active() const { return Active; }

  /// Attaches an argument computed after open() (e.g. a hit/miss outcome).
  void arg(const char *Key, std::string Value) {
    if (Active)
      Args.push_back({Key, std::move(Value)});
  }

private:
  void close();

  const char *Name = nullptr;
  uint64_t StartNs = 0;
  std::vector<TraceArg> Args;
  bool Active = false;
};

#define JZ_TRACE_CAT2(A, B) A##B
#define JZ_TRACE_CAT(A, B) JZ_TRACE_CAT2(A, B)

/// Opens a scope-long span. Disarmed cost: one branch (the argument list
/// is not evaluated). Two statements, so it needs a braced scope — which
/// every call site has.
#define JZ_TRACE_SPAN(...)                                                     \
  ::janitizer::TraceSpan JZ_TRACE_CAT(JzTraceSpan_, __LINE__);                 \
  if (::janitizer::TraceCollector::armed())                                    \
  JZ_TRACE_CAT(JzTraceSpan_, __LINE__).open(__VA_ARGS__)

/// Like JZ_TRACE_SPAN but binds the span to \p Var so the call site can
/// attach late arguments with Var.arg(...).
#define JZ_TRACE_SPAN_VAR(Var, ...)                                            \
  ::janitizer::TraceSpan Var;                                                  \
  if (::janitizer::TraceCollector::armed())                                    \
  Var.open(__VA_ARGS__)

/// Records a zero-duration event. Disarmed cost: one branch.
#define JZ_TRACE_INSTANT(...)                                                  \
  do {                                                                         \
    if (::janitizer::TraceCollector::armed())                                  \
      ::janitizer::TraceCollector::instant(__VA_ARGS__);                       \
  } while (0)

} // namespace janitizer

#endif // JANITIZER_SUPPORT_TRACE_H
