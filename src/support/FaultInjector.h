//===- support/FaultInjector.h - Deterministic fault injection ------------===//
///
/// \file
/// A process-wide registry of *named fault points* that fallible layers
/// consult before doing risky work. A fault point that "fires" makes the
/// layer take its real failure path (parse error, short write, dropped
/// task, ...) so the degrade-don't-die machinery is exercised end to end
/// with the production error-handling code, not test doubles.
///
/// Arming is either programmatic (tests: FaultInjector::instance().arm(...)
/// or a ScopedFaultPlan) or environmental via
///
///     JZ_FAULTS=<point>[:<trigger>...][,<point>[:<trigger>...]]...
///
/// with triggers
///
///     always         fire on every hit (default)
///     once           fire on the first hit only
///     hit=N          fire on the Nth hit only (1-based)
///     every=N        fire on every Nth hit
///     p=F            fire with probability F in [0,1] per hit
///     seed=S         seed for the p= draw (deterministic; default 1)
///
/// e.g. `JZ_FAULTS=static.analyze:hit=2,cache.read.corrupt:p=0.5:seed=7`.
///
/// Cost contract: when nothing is armed, a fault-point check is a single
/// branch on a cached bool (relaxed atomic load) — no map lookups, no
/// locks, no string work. The slow path (something armed) takes a mutex;
/// fault points live on cold paths (module load, cache I/O, per-module
/// analysis), never inside the block-dispatch hot loop.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_FAULTINJECTOR_H
#define JANITIZER_SUPPORT_FAULTINJECTOR_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace janitizer {

/// When a fault point fires.
struct FaultTrigger {
  enum class Kind : uint8_t {
    Always,      ///< every hit
    Once,        ///< first hit only
    NthHit,      ///< exactly the Nth hit (1-based)
    EveryN,      ///< every Nth hit
    Probability, ///< per-hit Bernoulli draw (seeded, deterministic)
  };
  Kind K = Kind::Always;
  uint64_t N = 1;      ///< NthHit / EveryN parameter
  double P = 1.0;      ///< Probability parameter
  uint64_t Seed = 1;   ///< Probability PRNG seed

  static FaultTrigger always() { return {}; }
  static FaultTrigger once() { return {Kind::Once, 1, 1.0, 1}; }
  static FaultTrigger nthHit(uint64_t N) { return {Kind::NthHit, N, 1.0, 1}; }
  static FaultTrigger everyN(uint64_t N) { return {Kind::EveryN, N, 1.0, 1}; }
  static FaultTrigger probability(double P, uint64_t Seed = 1) {
    return {Kind::Probability, 1, P, Seed};
  }
};

/// The fault points the pipeline consults, in pipeline order. Arming an
/// unknown name is allowed (it simply never gets hit) but configure()
/// warns, catching typos in JZ_FAULTS.
///
///   static.analyze          per-module static analysis errors out
///   static.budget           per-module analysis budget treated as exhausted
///   pool.task               a thread-pool task is dropped (worker death)
///   rules.parse             RuleFile::deserialize rejects the blob
///   cache.read.corrupt      a cache entry's bytes are bit-flipped on read
///   cache.write.enospc      cache entry write fails short (ENOSPC model)
///   cache.rename            cache entry publish (atomic rename) fails
///   dynamic.moduleload      rule-table installation at module load fails
///   dynamic.rules.validate  rule-file validation at module load fails
///   ruled.accept            rule daemon refuses the client connection
///   ruled.read              a rule-protocol read returns short/garbage
///   ruled.write             a rule-protocol write fails mid-frame
///   snapshot.write.enospc   state-file write fails (ENOSPC model)
///   snapshot.read.corrupt   state-file bytes are bit-flipped on read
///   snapshot.read.truncated state file comes back half-written
const std::vector<const char *> &knownFaultPoints();

class FaultInjector {
public:
  /// The process-wide injector. First use configures from JZ_FAULTS (a
  /// static initializer in FaultInjector.cpp forces this before main).
  static FaultInjector &instance();

  /// Hot-path gate: true when at least one fault point is armed. A single
  /// branch on a cached bool — the whole framework costs this much when
  /// JZ_FAULTS is unset.
  static bool armed() { return ArmedFlag.load(std::memory_order_relaxed); }

  /// True when the named fault point should fail now. The only call sites
  /// are the fault points themselves:
  ///
  ///     if (FaultInjector::shouldFail("cache.rename")) { ...fail path... }
  static bool shouldFail(const char *Point) {
    return armed() && instance().evaluate(Point);
  }

  /// Arms \p Point with \p T (replacing any previous trigger and counters).
  void arm(const std::string &Point, FaultTrigger T = FaultTrigger::always());

  /// Parses and applies a JZ_FAULTS-style spec. Returns a (Recoverable)
  /// error on malformed input; valid entries before the bad one stay armed.
  Error configure(const std::string &Spec);

  /// Reads JZ_FAULTS from the environment; malformed specs are reported to
  /// stderr and skipped — fault injection itself must degrade, never die.
  void configureFromEnv();

  /// Disarms everything and clears counters. Tests pair this with arm().
  void disarmAll();

  bool anyArmed() const;

  struct PointStats {
    uint64_t Hits = 0;  ///< times the armed point was evaluated
    uint64_t Fires = 0; ///< times it fired
  };
  /// Per-armed-point counters, name-sorted.
  std::vector<std::pair<std::string, PointStats>> stats() const;

private:
  FaultInjector() = default;
  bool evaluate(const char *Point);

  struct ArmedPoint {
    FaultTrigger T;
    PointStats S;
    uint64_t RngState = 0; ///< splitmix64 state for Probability
  };

  mutable std::mutex Mu;
  std::unordered_map<std::string, ArmedPoint> Points;
  static std::atomic<bool> ArmedFlag;
};

/// RAII fault plan for tests: arms the given (point, trigger) pairs on
/// construction, disarms *everything* on destruction.
class ScopedFaultPlan {
public:
  explicit ScopedFaultPlan(
      std::vector<std::pair<std::string, FaultTrigger>> Plan) {
    for (auto &[Point, T] : Plan)
      FaultInjector::instance().arm(Point, T);
  }
  ~ScopedFaultPlan() { FaultInjector::instance().disarmAll(); }
  ScopedFaultPlan(const ScopedFaultPlan &) = delete;
  ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace janitizer

#endif // JANITIZER_SUPPORT_FAULTINJECTOR_H
