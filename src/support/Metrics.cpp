//===- support/Metrics.cpp ------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Error.h"
#include "support/Json.h"

using namespace janitizer;

MetricsRegistry &MetricsRegistry::instance() {
  // Leaked for the same reason as TraceCollector: publishers may run from
  // static destructors during teardown.
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

MetricsRegistry::Entry &MetricsRegistry::getOrCreate(const std::string &Name,
                                                     Kind K) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Metrics.find(Name);
  if (It != Metrics.end()) {
    if (It->second.MetricKind != K)
      reportFatalError("metric '" + Name + "' registered with two kinds");
    return It->second;
  }
  Entry E;
  E.MetricKind = K;
  switch (K) {
  case Kind::Counter:
    E.C = std::make_unique<Counter>();
    break;
  case Kind::Gauge:
    E.G = std::make_unique<Gauge>();
    break;
  case Kind::Histogram:
    E.H = std::make_unique<Histogram>();
    break;
  }
  return Metrics.emplace(Name, std::move(E)).first->second;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  return *getOrCreate(Name, Kind::Counter).C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  return *getOrCreate(Name, Kind::Gauge).G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  return *getOrCreate(Name, Kind::Histogram).H;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Metrics.size();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, E] : Metrics) {
    switch (E.MetricKind) {
    case Kind::Counter:
      E.C->set(0);
      break;
    case Kind::Gauge:
      E.G->set(0);
      break;
    case Kind::Histogram:
      // Histograms have no reset; replace wholesale.
      E.H = std::make_unique<Histogram>();
      break;
    }
  }
}

std::vector<MetricsRegistry::Snapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<Snapshot> Out;
  Out.reserve(Metrics.size());
  for (const auto &[Name, E] : Metrics) {
    Snapshot S;
    S.Name = Name;
    S.MetricKind = E.MetricKind;
    switch (E.MetricKind) {
    case Kind::Counter:
      S.CounterValue = E.C->value();
      break;
    case Kind::Gauge:
      S.GaugeValue = E.G->value();
      break;
    case Kind::Histogram:
      S.HistCount = E.H->count();
      S.HistSum = E.H->sum();
      for (size_t I = 0; I < Histogram::NumBuckets; ++I) {
        uint64_t N = E.H->bucketCount(I);
        if (N) {
          S.HistBucketIdx.push_back(I);
          S.HistBuckets.push_back(N);
        }
      }
      break;
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

std::string MetricsRegistry::toText() const {
  std::string Out;
  for (const Snapshot &S : snapshot()) {
    Out += S.Name;
    Out += " = ";
    switch (S.MetricKind) {
    case Kind::Counter:
      Out += std::to_string(S.CounterValue);
      break;
    case Kind::Gauge:
      Out += std::to_string(S.GaugeValue);
      break;
    case Kind::Histogram: {
      Out += "count=" + std::to_string(S.HistCount) +
             " sum=" + std::to_string(S.HistSum);
      for (size_t I = 0; I < S.HistBucketIdx.size(); ++I) {
        size_t B = S.HistBucketIdx[I];
        Out += " [" + std::to_string(Histogram::bucketLo(B)) + "," +
               std::to_string(Histogram::bucketHi(B)) +
               "]=" + std::to_string(S.HistBuckets[I]);
      }
      break;
    }
    }
    Out += "\n";
  }
  return Out;
}

std::string MetricsRegistry::toJson() const {
  std::string Out = "{";
  bool First = true;
  for (const Snapshot &S : snapshot()) {
    if (!First)
      Out += ",";
    First = false;
    // Names are usually jz.<layer>.<name> identifiers, but nothing
    // enforces that — a tool may register a metric labeled with a module
    // path or other hostile string, and the output must stay parseable
    // (RFC 8259) for every aggregator downstream (the fleet harness).
    appendJsonString(Out, S.Name);
    Out += ':';
    switch (S.MetricKind) {
    case Kind::Counter:
      Out += std::to_string(S.CounterValue);
      break;
    case Kind::Gauge:
      Out += std::to_string(S.GaugeValue);
      break;
    case Kind::Histogram: {
      Out += "{\"count\":" + std::to_string(S.HistCount) +
             ",\"sum\":" + std::to_string(S.HistSum) + ",\"buckets\":{";
      for (size_t I = 0; I < S.HistBucketIdx.size(); ++I) {
        if (I)
          Out += ",";
        Out += '"';
        Out += std::to_string(Histogram::bucketLo(S.HistBucketIdx[I]));
        Out += "\":";
        Out += std::to_string(S.HistBuckets[I]);
      }
      Out += "}}";
      break;
    }
    }
  }
  Out += "}";
  return Out;
}
