//===- support/Trace.cpp --------------------------------------------------==//

#include "support/Trace.h"

#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace janitizer;

std::atomic<bool> TraceCollector::ArmedFlag{false};

//===----------------------------------------------------------------------===//
// Per-thread buffers
//===----------------------------------------------------------------------===//

/// Owned by a thread_local: the record path appends under the buffer's
/// own mutex, which only the exporting thread ever also takes — in steady
/// state the lock is uncontended and the append is a vector push. On
/// thread exit the destructor retires the events into the collector so no
/// span is lost when a pool worker dies before export.
struct TraceCollector::ThreadBuffer {
  TraceCollector *Owner = nullptr;
  uint32_t Tid = 0;
  std::mutex Mu;
  std::vector<TraceEvent> Events;

  ~ThreadBuffer() {
    if (Owner)
      Owner->retire(this);
  }
};

TraceCollector &TraceCollector::instance() {
  // Leaked on purpose (see header): thread_local ThreadBuffer destructors
  // may run during process teardown and must find the collector alive.
  static TraceCollector *C = new TraceCollector();
  return *C;
}

TraceCollector::ThreadBuffer &TraceCollector::threadBuffer() {
  thread_local ThreadBuffer TB;
  if (!TB.Owner) {
    std::lock_guard<std::mutex> Lock(Mu);
    TB.Owner = this;
    TB.Tid = NextTid++;
    Buffers.push_back(&TB);
  }
  return TB;
}

void TraceCollector::retire(ThreadBuffer *TB) {
  std::lock_guard<std::mutex> Lock(Mu);
  Buffers.erase(std::remove(Buffers.begin(), Buffers.end(), TB),
                Buffers.end());
  Retired.insert(Retired.end(), std::make_move_iterator(TB->Events.begin()),
                 std::make_move_iterator(TB->Events.end()));
  TB->Events.clear();
}

//===----------------------------------------------------------------------===//
// Recording
//===----------------------------------------------------------------------===//

uint64_t TraceCollector::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TraceCollector::start() {
  clear();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    EpochNs = nowNs();
  }
  ArmedFlag.store(true, std::memory_order_relaxed);
}

void TraceCollector::stop() { ArmedFlag.store(false, std::memory_order_relaxed); }

void TraceCollector::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (ThreadBuffer *TB : Buffers) {
    std::lock_guard<std::mutex> BLock(TB->Mu);
    TB->Events.clear();
  }
  Retired.clear();
  Dropped.store(0, std::memory_order_relaxed);
}

void TraceCollector::record(const char *Name, uint64_t StartNs, uint64_t EndNs,
                            std::vector<TraceArg> Args) {
  ThreadBuffer &TB = threadBuffer();
  std::lock_guard<std::mutex> Lock(TB.Mu);
  if (TB.Events.size() >= MaxEventsPerThread) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TB.Events.push_back({Name, StartNs, EndNs, TB.Tid, std::move(Args)});
}

void TraceCollector::instant(const char *Name,
                             std::initializer_list<TraceArg> Args) {
  uint64_t Now = nowNs();
  instance().record(Name, Now, Now, std::vector<TraceArg>(Args));
}

void TraceSpan::close() {
  TraceCollector::instance().record(Name, StartNs, TraceCollector::nowNs(),
                                    std::move(Args));
  Active = false;
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::vector<TraceEvent> Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Out = Retired;
    for (ThreadBuffer *TB : Buffers) {
      std::lock_guard<std::mutex> BLock(TB->Mu);
      Out.insert(Out.end(), TB->Events.begin(), TB->Events.end());
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              return std::strcmp(A.Name, B.Name) < 0;
            });
  return Out;
}

size_t TraceCollector::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = Retired.size();
  for (ThreadBuffer *TB : Buffers) {
    std::lock_guard<std::mutex> BLock(TB->Mu);
    N += TB->Events.size();
  }
  return N;
}

namespace {

// String tokens are escaped by the shared support/Json.h writer helper
// (appendJsonString) so the trace exporter and every other JSON emitter
// share one RFC 8259 implementation.

void appendMicros(std::string &Out, uint64_t Ns) {
  // Microseconds with fixed millinanosecond precision; printed as a JSON
  // number (Chrome accepts fractional ts/dur).
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned long long>(Ns % 1000));
  Out += Buf;
}

} // namespace

std::string TraceCollector::toJson() const {
  uint64_t Epoch;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Epoch = EpochNs;
  }
  std::vector<TraceEvent> Events = snapshot();
  std::string Out;
  Out.reserve(Events.size() * 96 + 64);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      Out.push_back(',');
    First = false;
    Out += "{\"name\":";
    appendJsonString(Out, E.Name);
    // The layer prefix doubles as the Chrome category, so per-layer
    // filtering works out of the box.
    std::string Cat(E.Name);
    size_t Dot = Cat.find('.');
    if (Dot != std::string::npos)
      Cat.resize(Dot);
    Out += ",\"cat\":";
    appendJsonString(Out, Cat.c_str());
    bool Instant = E.EndNs == E.StartNs;
    Out += Instant ? ",\"ph\":\"i\",\"s\":\"t\"" : ",\"ph\":\"X\"";
    Out += ",\"ts\":";
    appendMicros(Out, E.StartNs >= Epoch ? E.StartNs - Epoch : 0);
    if (!Instant) {
      Out += ",\"dur\":";
      appendMicros(Out, E.EndNs - E.StartNs);
    }
    Out += ",\"pid\":1,\"tid\":" + std::to_string(E.Tid);
    if (!E.Args.empty()) {
      Out += ",\"args\":{";
      for (size_t I = 0; I < E.Args.size(); ++I) {
        if (I)
          Out.push_back(',');
        appendJsonString(Out, E.Args[I].Key);
        Out.push_back(':');
        appendJsonString(Out, E.Args[I].Value.c_str());
      }
      Out.push_back('}');
    }
    Out.push_back('}');
  }
  Out += "]}";
  return Out;
}

Error TraceCollector::writeJson(const std::string &Path) const {
  std::ofstream OutFile(Path, std::ios::binary | std::ios::trunc);
  if (!OutFile)
    return makeError("cannot open trace output file '" + Path + "'");
  std::string Json = toJson();
  OutFile.write(Json.data(), static_cast<std::streamsize>(Json.size()));
  if (!OutFile)
    return makeError("short write to trace output file '" + Path + "'");
  return Error::success();
}

//===----------------------------------------------------------------------===//
// JZ_TRACE environment arming
//===----------------------------------------------------------------------===//

namespace {

std::string EnvTracePath;

void writeEnvTrace() {
  TraceCollector &C = TraceCollector::instance();
  C.stop();
  if (Error E = C.writeJson(EnvTracePath))
    std::fprintf(stderr, "warning: JZ_TRACE export failed: %s\n",
                 E.message().c_str());
}

/// JZ_TRACE=<path>: arm before main, export at exit — mirrors JZ_FAULTS,
/// so any existing binary can be traced without growing a flag.
struct EnvTraceInit {
  EnvTraceInit() {
    const char *Path = std::getenv("JZ_TRACE");
    if (!Path || !*Path)
      return;
    EnvTracePath = Path;
    TraceCollector::instance().start();
    std::atexit(writeEnvTrace);
  }
} EnvTraceInitializer;

} // namespace
