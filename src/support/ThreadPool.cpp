//===- support/ThreadPool.cpp ---------------------------------------------==//

#include "support/ThreadPool.h"

using namespace janitizer;

unsigned ThreadPool::resolveJobs(unsigned Requested) {
  if (Requested)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned N = resolveJobs(Threads);
  if (N <= 1)
    return; // inline mode: submit() runs tasks directly
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  if (Workers.empty()) {
    Task();
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Task));
    ++Pending;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  if (Workers.empty())
    return;
  std::unique_lock<std::mutex> Lock(Mu);
  AllDone.wait(Lock, [this] { return Pending == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (--Pending == 0)
        AllDone.notify_all();
    }
  }
}
