//===- support/ThreadPool.cpp ---------------------------------------------==//

#include "support/ThreadPool.h"

#include "support/FaultInjector.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdio>
#include <exception>

using namespace janitizer;

unsigned ThreadPool::resolveJobs(unsigned Requested) {
  if (Requested)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned N = resolveJobs(Threads);
  if (N <= 1)
    return; // inline mode: submit() runs tasks directly
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

size_t ThreadPool::droppedCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dropped;
}

bool ThreadPool::runTask(std::function<void()> &Task) {
  // One span per task, on both the worker and the inline path, so pool
  // occupancy is visible on the trace timeline.
  JZ_TRACE_SPAN("pool.task");
  MetricsRegistry::instance().counter("jz.pool.tasks").inc();
  // Worker-death model: the task vanishes without executing.
  if (FaultInjector::shouldFail("pool.task"))
    return false;
  try {
    Task();
    return true;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "warning: thread-pool task failed: %s\n", E.what());
  } catch (...) {
    std::fprintf(stderr, "warning: thread-pool task failed\n");
  }
  return false;
}

void ThreadPool::submit(std::function<void()> Task) {
  if (Workers.empty()) {
    if (!runTask(Task)) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Dropped;
      MetricsRegistry::instance().counter("jz.pool.dropped_tasks").inc();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Task));
    ++Pending;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  if (Workers.empty())
    return;
  std::unique_lock<std::mutex> Lock(Mu);
  AllDone.wait(Lock, [this] { return Pending == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    bool Completed = runTask(Task);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (!Completed) {
        ++Dropped;
        MetricsRegistry::instance().counter("jz.pool.dropped_tasks").inc();
      }
      if (--Pending == 0)
        AllDone.notify_all();
    }
  }
}
