//===- support/Random.h - Deterministic PRNG for workload generation -----===//
///
/// \file
/// A small splitmix64-based PRNG. Workload generation must be fully
/// deterministic so experiments are reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_RANDOM_H
#define JANITIZER_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>
#include <string>

namespace janitizer {

/// splitmix64 pseudo-random generator with convenience range helpers.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Seeds from a string (FNV-1a of the bytes), for per-benchmark streams.
  explicit SplitMix64(const std::string &Name) {
    uint64_t H = 1469598103934665603ull;
    for (char C : Name) {
      H ^= static_cast<uint8_t>(C);
      H *= 1099511628211ull;
    }
    State = H;
  }

  uint64_t next() {
    State += 0x9E3779B97f4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Bernoulli draw with probability \p Percent / 100.
  bool chancePercent(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

} // namespace janitizer

#endif // JANITIZER_SUPPORT_RANDOM_H
