//===- support/Hash.h - Stable content hashing ----------------------------===//
///
/// \file
/// 64-bit FNV-1a over byte buffers. Used as the content-hash half of the
/// rule-cache key: the hash of a module's serialized bytes identifies its
/// analysis input exactly, so any edit to the module invalidates its
/// cached rule file. Stable across platforms and runs (unlike
/// std::hash, which gives no such guarantee).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_HASH_H
#define JANITIZER_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace janitizer {

constexpr uint64_t Fnv1aOffset = 0xcbf29ce484222325ull;
constexpr uint64_t Fnv1aPrime = 0x100000001b3ull;

inline uint64_t hashBytes(const uint8_t *Data, size_t Len,
                          uint64_t Seed = Fnv1aOffset) {
  uint64_t H = Seed;
  for (size_t I = 0; I < Len; ++I) {
    H ^= Data[I];
    H *= Fnv1aPrime;
  }
  return H;
}

inline uint64_t hashBytes(const std::vector<uint8_t> &Data,
                          uint64_t Seed = Fnv1aOffset) {
  return hashBytes(Data.data(), Data.size(), Seed);
}

inline uint64_t hashString(const std::string &S, uint64_t Seed = Fnv1aOffset) {
  return hashBytes(reinterpret_cast<const uint8_t *>(S.data()), S.size(), Seed);
}

} // namespace janitizer

#endif // JANITIZER_SUPPORT_HASH_H
