//===- jasan/Shadow.h - ASan-style shadow memory ---------------------------===//
///
/// \file
/// Shadow encoding (one shadow byte per 8 application bytes, AddressSanitizer
/// semantics):
///   0          all 8 bytes addressable
///   1..7       only the first k bytes addressable
///   >= 0x80    poisoned (the value identifies the redzone kind)
///
/// The instrumentation check for an access of `size` bytes at `addr`:
///   sv = shadow[addr >> 3]
///   ok  iff  sv == 0  or  (addr & 7) + size - 1 < sv   (unsigned compare)
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_JASAN_SHADOW_H
#define JANITIZER_JASAN_SHADOW_H

#include "vm/Memory.h"
#include "vm/Syscalls.h"

namespace janitizer {

/// Poison values (mirroring ASan's kAsan* constants).
namespace shadowval {
constexpr uint8_t Addressable = 0x00;
constexpr uint8_t HeapRedzone = 0xFA;
constexpr uint8_t HeapFreed = 0xFD;
constexpr uint8_t StackCanary = 0xF9;
} // namespace shadowval

/// The inline slow path hands the faulting address and instruction address
/// to the trap handler through two stack slots *below* the live stack
/// pointer (a red-zone stash). Every guest thread has its own stack, so
/// concurrent threads tripping checks cannot clobber each other's report —
/// unlike a fixed global scratch address, which is a cross-thread race.
/// Offsets are subtracted from SP at the trap point.
constexpr uint64_t JasanStashAddrOff = 16; ///< faulting address at [sp-16]
constexpr uint64_t JasanStashPcOff = 24;   ///< instruction addr at [sp-24]

/// Host-side manager poking the guest's shadow region.
class ShadowManager {
public:
  explicit ShadowManager(GuestMemory &Mem) : Mem(Mem) {}

  /// Poisons [Addr, Addr+Len) with \p Value (granule-coarse: any granule
  /// the range touches becomes poisoned). An empty range touches no
  /// granule — without the guard, Addr + Len - 1 underflows and the loop
  /// walks (nearly) the whole shadow space.
  void poison(uint64_t Addr, uint64_t Len, uint8_t Value) {
    if (Len == 0)
      return;
    for (uint64_t G = Addr >> 3; G <= ((Addr + Len - 1) >> 3); ++G)
      Mem.write8(layout::ShadowBase + G, Value);
  }

  /// Makes [Addr, Addr+Len) precisely addressable; Addr must be 8-aligned.
  /// A partial final granule gets the ASan partial encoding.
  void unpoison(uint64_t Addr, uint64_t Len) {
    if (Len == 0)
      return;
    uint64_t Full = Len / 8;
    for (uint64_t I = 0; I < Full; ++I)
      Mem.write8(layout::ShadowBase + (Addr >> 3) + I, 0);
    if (Len % 8)
      Mem.write8(layout::ShadowBase + (Addr >> 3) + Full,
                 static_cast<uint8_t>(Len % 8));
  }

  uint8_t shadowByte(uint64_t Addr) const {
    return Mem.read8(layout::ShadowBase + (Addr >> 3));
  }

  /// The check the instrumentation performs, host-side (for tests and the
  /// Valgrind-style baseline).
  bool isInvalidAccess(uint64_t Addr, unsigned Size) const {
    uint8_t Sv = shadowByte(Addr);
    if (Sv == 0)
      return false;
    if (Sv >= 0x80)
      return true; // poisoned (shadow bytes are signed in ASan)
    return (Addr & 7) + Size - 1 >= Sv;
  }

private:
  GuestMemory &Mem;
};

} // namespace janitizer

#endif // JANITIZER_JASAN_SHADOW_H
