//===- jasan/JASan.cpp ----------------------------------------------------==//

#include "jasan/JASan.h"

#include "support/Format.h"
#include "support/Trace.h"

#include <algorithm>

using namespace janitizer;

ScratchPlan janitizer::planScratch(uint16_t FreeRegs, bool FlagsLive,
                                   uint16_t OperandRegs, bool Conservative) {
  ScratchPlan Plan;
  uint16_t Banned = OperandRegs | regBit(Reg::SP) | regBit(Reg::TP);
  uint16_t Usable = static_cast<uint16_t>(~Banned) & 0x3FFF; // r0..r13
  uint16_t Free = Conservative ? 0 : (FreeRegs & Usable);

  auto Pick = [&](uint16_t Preferred, uint16_t Fallback, bool &Save) -> Reg {
    for (unsigned R = 0; R < 14; ++R)
      if (Preferred & (1u << R)) {
        Save = false;
        return static_cast<Reg>(R);
      }
    for (unsigned R = 0; R < 14; ++R)
      if (Fallback & (1u << R)) {
        Save = true;
        return static_cast<Reg>(R);
      }
    JZ_UNREACHABLE("no scratch register available");
  };

  Plan.S0 = Pick(Free, Usable, Plan.SaveS0);
  uint16_t WithoutS0 = static_cast<uint16_t>(~regBit(Plan.S0));
  Plan.S1 = Pick(Free & WithoutS0, Usable & WithoutS0, Plan.SaveS1);
  Plan.SaveFlags = Conservative || FlagsLive;
  return Plan;
}

namespace {

uint16_t operandRegs(const MemOperand &M) {
  uint16_t Mask = 0;
  if (M.HasBase)
    Mask |= regBit(M.Base);
  if (M.HasIndex)
    Mask |= regBit(M.Index);
  return Mask;
}

Instruction mkPush(Reg R) {
  Instruction I;
  I.Op = Opcode::PUSH;
  I.Rd = R;
  return I;
}
Instruction mkPop(Reg R) {
  Instruction I;
  I.Op = Opcode::POP;
  I.Rd = R;
  return I;
}
Instruction mkOp(Opcode Op) {
  Instruction I;
  I.Op = Op;
  return I;
}
Instruction mkRI(Opcode Op, Reg R, int64_t Imm) {
  Instruction I;
  I.Op = Op;
  I.Rd = R;
  I.Imm = Imm;
  return I;
}
Instruction mkMovRR(Reg Rd, Reg Rs) {
  Instruction I;
  I.Op = Opcode::MOV_RR;
  I.Rd = Rd;
  I.Rs = Rs;
  return I;
}

/// saves per the plan; returns the number of stack slots pushed.
unsigned emitSaves(BlockBuilder &B, const ScratchPlan &Plan) {
  unsigned N = 0;
  if (Plan.SaveS0) {
    B.meta(mkPush(Plan.S0));
    ++N;
  }
  if (Plan.SaveS1) {
    B.meta(mkPush(Plan.S1));
    ++N;
  }
  if (Plan.SaveFlags) {
    B.meta(mkOp(Opcode::PUSHF));
    ++N;
  }
  return N;
}

void emitRestores(BlockBuilder &B, const ScratchPlan &Plan) {
  if (Plan.SaveFlags)
    B.meta(mkOp(Opcode::POPF));
  if (Plan.SaveS1)
    B.meta(mkPop(Plan.S1));
  if (Plan.SaveS0)
    B.meta(mkPop(Plan.S0));
}

/// Loads the effective address of \p Mem into S0, compensating for stack
/// pushes the instrumentation performed when the operand is SP-based.
/// For pc-relative operands the address is a build-time constant.
void emitAddressOf(BlockBuilder &B, const MemOperand &Mem, uint64_t InstrAddr,
                   unsigned AppInstrSize, unsigned PushedSlots, Reg S0) {
  if (Mem.PCRel) {
    uint64_t Abs = InstrAddr + AppInstrSize +
                   static_cast<uint64_t>(static_cast<int64_t>(Mem.Disp));
    B.meta(mkRI(Opcode::MOV_RI64, S0, static_cast<int64_t>(Abs)));
    return;
  }
  Instruction Lea;
  Lea.Op = Opcode::LEA;
  Lea.Rd = S0;
  Lea.Mem = Mem;
  if ((Mem.HasBase && Mem.Base == Reg::SP) ||
      (Mem.HasIndex && Mem.Index == Reg::SP))
    Lea.Mem.Disp += static_cast<int32_t>(8 * PushedSlots);
  B.meta(Lea);
}

} // namespace

void JASanTool::emitShadowCheck(BlockBuilder &B, const MemOperand &Mem,
                                unsigned Size, uint64_t InstrAddr,
                                unsigned AppInstrSize,
                                const ScratchPlan &Plan) {
  Reg S0 = Plan.S0, S1 = Plan.S1;
  unsigned Pushed = emitSaves(B, Plan);

  emitAddressOf(B, Mem, InstrAddr, AppInstrSize, Pushed, S0);
  B.meta(mkMovRR(S1, S0));
  B.meta(mkRI(Opcode::SHRI, S1, 3));
  // s1 = shadow[s1]
  Instruction Ld;
  Ld.Op = Opcode::LD1;
  Ld.Rd = S1;
  Ld.Mem.HasBase = true;
  Ld.Mem.Base = S1;
  Ld.Mem.Disp = static_cast<int32_t>(layout::ShadowBase);
  B.meta(Ld);
  B.meta(mkRI(Opcode::TESTI, S1, 0xFF));
  size_t FastOk = B.metaBranch(Opcode::JE);

  // Slow path. ASan shadow bytes are signed: values >= 0x80 are poison and
  // always fault; 1..7 are partial granules checked against the in-granule
  // offset. LD1 zero-extends, so poison is an explicit unsigned test.
  // The report operands are stashed below the thread's own stack pointer
  // (per-thread by construction); no pushes happen between the stash and
  // the TRAP, so the slots are stable when the handler reads them.
  Instruction Stash;
  Stash.Op = Opcode::ST8;
  Stash.Rd = S0;
  Stash.Mem.HasBase = true;
  Stash.Mem.Base = Reg::SP;
  Stash.Mem.Disp = -static_cast<int32_t>(JasanStashAddrOff);
  B.meta(Stash); // faulting address for the trap handler
  B.meta(mkRI(Opcode::CMPI, S1, 0x80));
  size_t PoisonBr = B.metaBranch(Opcode::JAE); // poisoned -> trap
  B.meta(mkRI(Opcode::ANDI, S0, 7));
  B.meta(mkRI(Opcode::ADDI, S0, static_cast<int64_t>(Size) - 1));
  Instruction Cmp;
  Cmp.Op = Opcode::CMP;
  Cmp.Rd = S0;
  Cmp.Rs = S1;
  B.meta(Cmp);
  size_t SlowOk = B.metaBranch(Opcode::JB); // (addr&7)+size-1 < sv: fine

  B.bindToNext(PoisonBr);
  B.meta(mkRI(Opcode::MOV_RI64, S0, static_cast<int64_t>(InstrAddr)));
  Instruction Stash2;
  Stash2.Op = Opcode::ST8;
  Stash2.Rd = S0;
  Stash2.Mem.HasBase = true;
  Stash2.Mem.Base = Reg::SP;
  Stash2.Mem.Disp = -static_cast<int32_t>(JasanStashPcOff);
  B.meta(Stash2);
  B.meta(mkRI(Opcode::TRAP,
              Reg::R0, static_cast<int64_t>(TrapCode::AsanViolation)));

  B.bindToNext(FastOk);
  B.bindToNext(SlowOk);
  emitRestores(B, Plan);
}

void JASanTool::emitCanaryShadowWrite(BlockBuilder &B,
                                      const MemOperand &SlotOperand,
                                      uint8_t Value,
                                      const ScratchPlan &Plan) {
  Reg S0 = Plan.S0, S1 = Plan.S1;
  unsigned Pushed = emitSaves(B, Plan);
  emitAddressOf(B, SlotOperand, 0, 0, Pushed, S0);
  B.meta(mkRI(Opcode::SHRI, S0, 3));
  B.meta(mkRI(Opcode::MOV_RI32, S1, Value));
  Instruction St;
  St.Op = Opcode::ST1;
  St.Rd = S1;
  St.Mem.HasBase = true;
  St.Mem.Base = S0;
  St.Mem.Disp = static_cast<int32_t>(layout::ShadowBase);
  B.meta(St);
  emitRestores(B, Plan);
}

//===----------------------------------------------------------------------===//
// Static pass
//===----------------------------------------------------------------------===//

void JASanTool::runStaticPass(const StaticContext &Ctx, RuleFile &Out) {
  // Index SCEV-elidable accesses.
  std::unordered_map<uint64_t, const ElidableAccess *> Elided;
  for (const ElidableAccess &EA : Ctx.Loops.Elidable)
    Elided[EA.InstrAddr] = &EA;

  // Index canary instrumentation points.
  std::unordered_map<uint64_t, const CanarySite *> PoisonAt;
  std::unordered_map<uint64_t, const CanarySite *> UnpoisonAt;
  for (const CanarySite &CS : Ctx.Canaries.Sites) {
    PoisonAt[CS.StoreInstr] = &CS;
    for (uint64_t L : CS.CheckLoads)
      UnpoisonAt[L] = &CS;
  }

  // Each instruction address gets its rules once, even when overlapping
  // decodes put it in several blocks.
  std::set<uint64_t> Done;
  for (const auto &[BBAddr, BB] : Ctx.CFG.Blocks) {
    unsigned FuncIdx = BB.FuncIdx;
    bool Conservative = false;
    if (FuncIdx != ~0u && FuncIdx < Ctx.CFG.Functions.size()) {
      uint64_t Entry = Ctx.CFG.Functions[FuncIdx].Entry;
      Conservative = Ctx.Liveness.ConventionBreakers.count(Entry) != 0;
    }
    for (const DecodedInstr &DI : BB.Instrs) {
      if (!Done.insert(DI.Addr).second)
        continue;
      LiveState Live = Ctx.Liveness.at(DI.Addr);
      uint64_t FreeRegs = Ctx.Liveness.freeRegsAt(DI.Addr);

      if (auto It = PoisonAt.find(DI.Addr); It != PoisonAt.end()) {
        RewriteRule R;
        R.Id = RuleId::AsanPoisonCanary;
        R.BBAddr = BBAddr;
        R.InstrAddr = DI.Addr;
        R.Data[0] = FreeRegs;
        R.Data[1] = Live.Flags;
        R.Data[2] = Conservative;
        Out.Rules.push_back(R);
      }
      if (auto It = UnpoisonAt.find(DI.Addr); It != UnpoisonAt.end()) {
        RewriteRule R;
        R.Id = RuleId::AsanUnpoisonCanary;
        R.BBAddr = BBAddr;
        R.InstrAddr = DI.Addr;
        R.Data[0] = FreeRegs;
        R.Data[1] = Live.Flags;
        R.Data[2] = Conservative;
        Out.Rules.push_back(R);
      }

      if (isDataMemAccess(DI.I.Op)) {
        if (auto It = Elided.find(DI.Addr); It != Elided.end()) {
          RewriteRule R;
          R.Id = RuleId::AsanElide;
          R.BBAddr = BBAddr;
          R.InstrAddr = DI.Addr;
          Out.Rules.push_back(R);
        } else {
          RewriteRule R;
          R.Id = RuleId::AsanCheck;
          R.BBAddr = BBAddr;
          R.InstrAddr = DI.Addr;
          R.Data[0] = FreeRegs;
          R.Data[1] = Live.Flags;
          R.Data[2] = Conservative;
          Out.Rules.push_back(R);
        }
      }
    }
  }

  // Hoisted preheader checks for the elided accesses.
  for (const ElidableAccess &EA : Ctx.Loops.Elidable) {
    RewriteRule R;
    R.Id = RuleId::AsanHoistedCheck;
    R.BBAddr = EA.PreheaderBlock;
    R.InstrAddr = EA.AnchorInstr;
    LiveState Live = Ctx.Liveness.at(EA.AnchorInstr);
    // Pack: base register | hasBase<<7 | size<<8, liveness in high bits.
    uint64_t Packed = static_cast<uint64_t>(EA.Mem.HasBase
                                                ? static_cast<unsigned>(EA.Mem.Base)
                                                : 0) |
                      (EA.Mem.HasBase ? 0x80u : 0u) |
                      (static_cast<uint64_t>(EA.AccessSize) << 8) |
                      (static_cast<uint64_t>(Ctx.Liveness.freeRegsAt(
                           EA.AnchorInstr))
                       << 16) |
                      (static_cast<uint64_t>(Live.Flags) << 32);
    R.Data[0] = Packed;
    R.Data[1] = static_cast<uint64_t>(static_cast<int64_t>(EA.Mem.Disp));
    R.Data[2] = static_cast<uint64_t>(static_cast<int64_t>(EA.LastDisp));
    Out.Rules.push_back(R);
  }
}

//===----------------------------------------------------------------------===//
// Dynamic side
//===----------------------------------------------------------------------===//

void JASanTool::onModuleLoad(JanitizerDynamic &D, const LoadedModule &LM) {
  // Resolve runtime entry points for interposition (once visible). The
  // loader serializes module loads; dispatcher threads read the atomics.
  Process &P = D.process();
  auto Resolve = [&](std::atomic<uint64_t> &Slot, const char *Name) {
    if (!Slot.load(std::memory_order_relaxed))
      Slot.store(P.resolveSymbol(Name), std::memory_order_release);
  };
  Resolve(MallocAddr, "malloc");
  Resolve(FreeAddr, "free");
  Resolve(CallocAddr, "calloc");
  Resolve(ReallocAddr, "realloc");
  Resolve(MemmoveAddr, "memmove");
}

namespace {
/// Scans [Addr, Addr+Len) for a byte whose shadow says it is not
/// addressable; granule-at-a-time with ASan partial-granule semantics.
bool rangePoisoned(const ShadowManager &Shadow, uint64_t Addr, uint64_t Len,
                   uint64_t &BadAddr) {
  uint64_t End = Addr + Len;
  for (uint64_t A = Addr; A < End;) {
    uint64_t GranuleEnd = ((A >> 3) + 1) << 3;
    uint64_t ChunkEnd = GranuleEnd < End ? GranuleEnd : End;
    if (Shadow.isInvalidAccess(A, static_cast<unsigned>(ChunkEnd - A))) {
      BadAddr = A;
      return true;
    }
    A = ChunkEnd;
  }
  return false;
}
} // namespace

bool JASanTool::interceptTarget(JanitizerDynamic &D, uint64_t Target) {
  uint64_t Malloc = MallocAddr.load(std::memory_order_relaxed);
  uint64_t Free = FreeAddr.load(std::memory_order_relaxed);
  uint64_t Calloc = CallocAddr.load(std::memory_order_relaxed);
  uint64_t Realloc = ReallocAddr.load(std::memory_order_relaxed);
  uint64_t Memmove = MemmoveAddr.load(std::memory_order_relaxed);
  if (!Target || (Target != Malloc && Target != Free && Target != Calloc &&
                  Target != Realloc && Target != Memmove))
    return false;
  // Span after the address filter: interceptTarget is probed on every
  // indirect dispatch, but only actual allocator calls get here.
  JZ_TRACE_SPAN("jasan.interpose",
                {{"fn", Target == Malloc    ? "malloc"
                        : Target == Calloc  ? "calloc"
                        : Target == Realloc ? "realloc"
                        : Target == Memmove ? "memmove"
                                            : "free"}});
  Machine &M = D.machine();
  Process &P = D.process();
  D.engine().charge(60); // the sanitizer runtime's own work
  if (Target == Malloc) {
    M.reg(Reg::R0) = Alloc.allocate(P, M.reg(Reg::R0));
  } else if (Target == Memmove) {
    // Interposed memmove (the LD_PRELOAD analogue of ASan's): validate
    // both ranges against shadow, then perform a buffered — and therefore
    // overlap-safe — copy on behalf of the guest.
    uint64_t Dst = M.reg(Reg::R0);
    uint64_t Src = M.reg(Reg::R1);
    uint64_t N = M.reg(Reg::R2);
    if (N) {
      ShadowManager Shadow(P.M.Mem);
      uint64_t Bad = 0;
      if (rangePoisoned(Shadow, Src, N, Bad))
        D.engine().recordViolation(
            static_cast<uint8_t>(TrapCode::AsanViolation), M.PC, Bad,
            "memmove-src-oob");
      if (rangePoisoned(Shadow, Dst, N, Bad))
        D.engine().recordViolation(
            static_cast<uint8_t>(TrapCode::AsanViolation), M.PC, Bad,
            "memmove-dst-oob");
      std::vector<uint8_t> Bytes = P.M.Mem.readBytes(Src, N);
      P.M.Mem.writeBytes(Dst, Bytes.data(), N);
      D.engine().charge(N / 8);
    }
    M.reg(Reg::R0) = Dst;
  } else if (Target == Calloc) {
    // calloc(n, size): the product must not wrap 64 bits — a wrapped
    // product under-allocates and every "in-bounds" access lands in
    // somebody else's memory. Overflow returns NULL, nothing recorded.
    uint64_t N = M.reg(Reg::R0);
    uint64_t Size = M.reg(Reg::R1);
    if (Size != 0 && N > UINT64_MAX / Size) {
      M.reg(Reg::R0) = 0;
    } else {
      uint64_t Bytes = N * Size;
      uint64_t User = Alloc.allocate(P, Bytes);
      P.M.Mem.fill(User, Bytes, 0);
      M.reg(Reg::R0) = User;
    }
  } else if (Target == Realloc) {
    bool Invalid = false;
    uint64_t NewAddr =
        Alloc.reallocate(P, M.reg(Reg::R0), M.reg(Reg::R1), Invalid);
    if (Invalid)
      D.engine().recordViolation(
          static_cast<uint8_t>(TrapCode::AsanViolation), M.PC,
          M.reg(Reg::R0), "invalid-realloc");
    M.reg(Reg::R0) = NewAddr;
  } else {
    if (!Alloc.deallocate(P, M.reg(Reg::R0)))
      D.engine().recordViolation(
          static_cast<uint8_t>(TrapCode::AsanViolation), M.PC,
          M.reg(Reg::R0), "invalid-free");
  }
  M.PC = M.pop64(); // return to the caller
  return true;
}

HookAction JASanTool::onTrap(JanitizerDynamic &D, uint8_t TrapCode,
                             uint64_t PC) {
  if (TrapCode != static_cast<uint8_t>(TrapCode::AsanViolation))
    return HookAction::Abort; // e.g. __stack_chk_fail
  Machine &M = D.machine();
  // The slow path stashed the report operands below the trapping thread's
  // stack pointer (see emitShadowCheck).
  uint64_t Sp = M.reg(Reg::SP);
  uint64_t Addr = M.Mem.read64(Sp - JasanStashAddrOff);
  uint64_t InstrAddr = M.Mem.read64(Sp - JasanStashPcOff);
  ShadowManager Shadow(M.Mem);
  uint8_t Sv = Shadow.shadowByte(Addr);
  const char *Kind = "partial-oob";
  if (Sv == shadowval::HeapRedzone)
    Kind = "heap-redzone";
  else if (Sv == shadowval::HeapFreed)
    Kind = "heap-use-after-free";
  else if (Sv == shadowval::StackCanary)
    Kind = "stack-canary";
  D.engine().recordViolation(TrapCode, InstrAddr ? InstrAddr : PC, Addr,
                             Kind);
  JZ_TRACE_INSTANT("jasan.violation", {{"kind", Kind}});
  return Opts.AbortOnViolation ? HookAction::Abort : HookAction::Violation;
}

void JASanTool::instrumentWithRules(
    JanitizerDynamic &D, CacheBlock &Block, BlockBuilder &B,
    const std::vector<DecodedInstrRT> &Instrs,
    const std::unordered_map<uint64_t, std::vector<RewriteRule>> &InstrRules) {
  JZ_TRACE_SPAN("jasan.instrument", {{"mode", "rules"}});
  for (const DecodedInstrRT &DI : Instrs) {
    auto It = InstrRules.find(DI.Addr);
    const std::vector<RewriteRule> *Rules =
        It == InstrRules.end() ? nullptr : &It->second;

    const RewriteRule *Poison = nullptr;
    if (Rules) {
      // Ordering: hoisted checks and unpoisons run before the
      // instruction's own check; poisons run after the instruction.
      for (const RewriteRule &R : *Rules) {
        if (R.Id != RuleId::AsanHoistedCheck)
          continue;
        MemOperand Mem;
        Mem.HasBase = (R.Data[0] & 0x80) != 0;
        Mem.Base = static_cast<Reg>(R.Data[0] & 0x0F);
        unsigned Size = static_cast<unsigned>((R.Data[0] >> 8) & 0xFF);
        uint16_t FreeRegs = static_cast<uint16_t>((R.Data[0] >> 16) & 0xFFFF);
        bool FlagsLive = ((R.Data[0] >> 32) & 1) != 0;
        if (!Opts.UseLiveness) {
          FreeRegs = 0;
          FlagsLive = true;
        }
        ScratchPlan Plan =
            planScratch(FreeRegs, FlagsLive, operandRegs(Mem), false);
        // First and last footprint displacements.
        for (uint64_t DataIdx : {1, 2}) {
          MemOperand Check = Mem;
          Check.Disp = static_cast<int32_t>(
              static_cast<int64_t>(R.Data[DataIdx]));
          emitShadowCheck(B, Check, Size, DI.Addr, DI.I.Size, Plan);
          if (R.Data[1] == R.Data[2])
            break; // loop-invariant: one endpoint
        }
      }
      for (const RewriteRule &R : *Rules) {
        if (R.Id == RuleId::AsanUnpoisonCanary) {
          uint16_t FreeRegs = Opts.UseLiveness
                                  ? static_cast<uint16_t>(R.Data[0])
                                  : 0;
          bool FlagsLive = Opts.UseLiveness ? R.Data[1] != 0 : true;
          ScratchPlan Plan = planScratch(FreeRegs, FlagsLive,
                                         operandRegs(DI.I.Mem),
                                         R.Data[2] != 0);
          emitCanaryShadowWrite(B, DI.I.Mem, shadowval::Addressable, Plan);
        } else if (R.Id == RuleId::AsanCheck) {
          uint16_t FreeRegs = Opts.UseLiveness
                                  ? static_cast<uint16_t>(R.Data[0])
                                  : 0;
          bool FlagsLive = Opts.UseLiveness ? R.Data[1] != 0 : true;
          ScratchPlan Plan = planScratch(FreeRegs, FlagsLive,
                                         operandRegs(DI.I.Mem),
                                         R.Data[2] != 0);
          emitShadowCheck(B, DI.I.Mem, memAccessSize(DI.I.Op), DI.Addr,
                          DI.I.Size, Plan);
        } else if (R.Id == RuleId::AsanPoisonCanary) {
          Poison = &R;
        }
      }
    }

    B.app(DI.I, DI.Addr);

    if (Poison) {
      uint16_t FreeRegs = Opts.UseLiveness
                              ? static_cast<uint16_t>(Poison->Data[0])
                              : 0;
      bool FlagsLive = Opts.UseLiveness ? Poison->Data[1] != 0 : true;
      ScratchPlan Plan = planScratch(FreeRegs, FlagsLive,
                                     operandRegs(DI.I.Mem),
                                     Poison->Data[2] != 0);
      emitCanaryShadowWrite(B, DI.I.Mem, shadowval::StackCanary, Plan);
    }
  }
}

void JASanTool::instrumentFallback(JanitizerDynamic &D, CacheBlock &Block,
                                   BlockBuilder &B,
                                   const std::vector<DecodedInstrRT> &Instrs) {
  JZ_TRACE_SPAN("jasan.instrument", {{"mode", "fallback"}});
  // Per-block conservative analysis (§3.4.3): every load/store is checked
  // with full save/restore; block-local canary idioms are still honored.
  uint16_t HoldsTp = 0;
  // Pre-scan: which loads are canary-check loads (followed in this block
  // by a cmp against TP)?
  std::set<uint64_t> CanaryLoads;
  std::set<uint64_t> CanaryStores;
  for (size_t K = 0; K < Instrs.size(); ++K) {
    const Instruction &I = Instrs[K].I;
    if (I.Op == Opcode::MOV_RR && I.Rs == Reg::TP) {
      HoldsTp |= regBit(I.Rd);
      continue;
    }
    if (I.Op == Opcode::ST8 && (HoldsTp & regBit(I.Rd)) && I.Mem.HasBase &&
        I.Mem.Base == Reg::SP && !I.Mem.HasIndex) {
      CanaryStores.insert(Instrs[K].Addr);
      continue;
    }
    if (I.Op == Opcode::LD8 && I.Mem.HasBase && I.Mem.Base == Reg::SP &&
        !I.Mem.HasIndex && K + 1 < Instrs.size()) {
      const Instruction &Next = Instrs[K + 1].I;
      if (Next.Op == Opcode::CMP &&
          (Next.Rs == Reg::TP || Next.Rd == Reg::TP))
        CanaryLoads.insert(Instrs[K].Addr);
    }
    HoldsTp &= static_cast<uint16_t>(~regsWritten(I));
  }

  ScratchPlan Conservative = planScratch(0, true, 0, true);
  for (const DecodedInstrRT &DI : Instrs) {
    if (CanaryLoads.count(DI.Addr)) {
      ScratchPlan Plan = planScratch(0, true, operandRegs(DI.I.Mem), true);
      emitCanaryShadowWrite(B, DI.I.Mem, shadowval::Addressable, Plan);
    }
    if (isDataMemAccess(DI.I.Op)) {
      ScratchPlan Plan = planScratch(0, true, operandRegs(DI.I.Mem), true);
      emitShadowCheck(B, DI.I.Mem, memAccessSize(DI.I.Op), DI.Addr,
                      DI.I.Size, Plan);
    }
    B.app(DI.I, DI.Addr);
    if (CanaryStores.count(DI.Addr)) {
      ScratchPlan Plan = planScratch(0, true, operandRegs(DI.I.Mem), true);
      emitCanaryShadowWrite(B, DI.I.Mem, shadowval::StackCanary, Plan);
    }
  }
  (void)Conservative;
}
