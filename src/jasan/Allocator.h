//===- jasan/Allocator.h - Red-zone allocator interposition ----------------===//
///
/// \file
/// The sanitizer runtime's allocator. Guest calls to malloc/free/calloc are
/// diverted here at dispatch time — the analogue of LD_PRELOADing ASan's
/// runtime allocator (§4.1). Every allocation is bracketed by poisoned
/// red zones; freed chunks are poisoned and quarantined (never reused), so
/// use-after-free and heap overflow/underflow all land in poisoned shadow.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_JASAN_ALLOCATOR_H
#define JANITIZER_JASAN_ALLOCATOR_H

#include "jasan/Shadow.h"
#include "support/ByteReader.h"
#include "support/Endian.h"
#include "vm/Process.h"

#include <map>
#include <mutex>
#include <vector>

namespace janitizer {

class RedzoneAllocator {
public:
  /// Red-zone bytes on each side of an allocation.
  explicit RedzoneAllocator(unsigned RedzoneBytes = 64)
      : Redzone(RedzoneBytes) {}

  struct Chunk {
    uint64_t UserAddr = 0;
    uint64_t UserSize = 0;
    bool Live = false;
  };

  /// Allocates \p Size bytes with red zones; returns the user pointer.
  /// All entry points serialize on one allocator lock: guest threads call
  /// malloc/free concurrently through interposition, and the chunk map,
  /// counters and shadow bookkeeping must mutate atomically.
  uint64_t allocate(Process &P, uint64_t Size) {
    std::lock_guard<std::mutex> Lock(AllocMtx);
    return allocateLocked(P, Size);
  }

  /// Frees \p UserAddr: poisons the chunk and quarantines it.
  /// Returns false on invalid/double free.
  bool deallocate(Process &P, uint64_t UserAddr) {
    std::lock_guard<std::mutex> Lock(AllocMtx);
    return deallocateLocked(P, UserAddr);
  }

  /// realloc semantics over the red-zone discipline: a fresh chunk is
  /// always allocated (never grown in place), min(old, new) bytes are
  /// copied, and the old chunk is poisoned and quarantined — so writes
  /// past the old size land in the new chunk's red zone and reads through
  /// the stale pointer land in HeapFreed shadow. realloc(0, n) is
  /// allocate; realloc(p, 0) is deallocate returning 0. On an invalid or
  /// already-freed \p OldAddr sets \p Invalid and leaves state untouched.
  uint64_t reallocate(Process &P, uint64_t OldAddr, uint64_t NewSize,
                      bool &Invalid) {
    std::lock_guard<std::mutex> Lock(AllocMtx);
    Invalid = false;
    if (OldAddr == 0)
      return NewSize ? allocateLocked(P, NewSize) : 0;
    auto It = Chunks.find(OldAddr);
    if (It == Chunks.end() || !It->second.Live) {
      Invalid = true;
      return 0;
    }
    if (NewSize == 0) {
      deallocateLocked(P, OldAddr);
      return 0;
    }
    // Guard the rounded-size arithmetic in allocate(): a huge request
    // (e.g. (size_t)-1) must fail cleanly with the old chunk intact.
    if (NewSize > (1ull << 47))
      return 0;
    uint64_t OldSize = It->second.UserSize;
    uint64_t NewAddr = allocateLocked(P, NewSize);
    uint64_t CopyLen = OldSize < NewSize ? OldSize : NewSize;
    if (CopyLen) {
      // Buffered copy: trivially overlap-safe, though fresh chunks never
      // overlap the old one under the quarantine discipline.
      std::vector<uint8_t> Bytes = P.M.Mem.readBytes(OldAddr, CopyLen);
      P.M.Mem.writeBytes(NewAddr, Bytes.data(), CopyLen);
    }
    deallocateLocked(P, OldAddr);
    ++Reallocs;
    return NewAddr;
  }

  /// Serializes the counters and the chunk map for a StateFile snapshot.
  /// The red-zone/quarantine poison itself lives in guest shadow memory
  /// and travels with the process memory image, not here.
  std::vector<uint8_t> serializeState() const {
    std::lock_guard<std::mutex> Lock(AllocMtx);
    std::vector<uint8_t> B;
    writeLE64(B, Mallocs);
    writeLE64(B, Frees);
    writeLE64(B, Reallocs);
    writeLE32(B, static_cast<uint32_t>(Chunks.size()));
    for (const auto &[Addr, C] : Chunks) {
      writeLE64(B, Addr);
      writeLE64(B, C.UserAddr);
      writeLE64(B, C.UserSize);
      B.push_back(C.Live ? 1 : 0);
    }
    return B;
  }

  /// Restores a serializeState() blob. A malformed blob returns an Error
  /// with the allocator untouched (cold-start semantics).
  Error deserializeState(const std::vector<uint8_t> &Blob) {
    ByteReader R(Blob);
    uint64_t NewMallocs = R.u64();
    uint64_t NewFrees = R.u64();
    uint64_t NewReallocs = R.u64();
    std::map<uint64_t, Chunk> NewChunks;
    uint32_t N = R.u32();
    for (uint32_t I = 0; R.ok() && I < N; ++I) {
      uint64_t Addr = R.u64();
      Chunk C;
      C.UserAddr = R.u64();
      C.UserSize = R.u64();
      C.Live = R.u8() != 0;
      NewChunks[Addr] = C;
    }
    if (!R.ok())
      return makeError("truncated allocator state blob");
    std::lock_guard<std::mutex> Lock(AllocMtx);
    Mallocs = NewMallocs;
    Frees = NewFrees;
    Reallocs = NewReallocs;
    Chunks = std::move(NewChunks);
    return Error::success();
  }

  const Chunk *chunkAt(uint64_t UserAddr) const {
    std::lock_guard<std::mutex> Lock(AllocMtx);
    auto It = Chunks.find(UserAddr);
    // Chunks are quarantined, never erased, so the node pointer stays
    // valid after the lock drops.
    return It == Chunks.end() ? nullptr : &It->second;
  }

  uint64_t Mallocs = 0;
  uint64_t Frees = 0;
  uint64_t Reallocs = 0;

private:
  uint64_t allocateLocked(Process &P, uint64_t Size) {
    ShadowManager Shadow(P.M.Mem);
    uint64_t Rounded = (Size + 15) & ~15ull;
    uint64_t Total = Rounded + 2 * Redzone;
    uint64_t Base = P.hostSbrk(Total);
    Shadow.poison(Base, Redzone, shadowval::HeapRedzone);
    uint64_t User = Base + Redzone;
    Shadow.unpoison(User, Size);
    // Tail of the rounded region plus the right red zone.
    uint64_t TailStart = User + ((Size + 7) & ~7ull);
    uint64_t End = Base + Total;
    if (TailStart < End)
      Shadow.poison(TailStart, End - TailStart, shadowval::HeapRedzone);
    Chunks[User] = {User, Size, true};
    ++Mallocs;
    return User;
  }

  bool deallocateLocked(Process &P, uint64_t UserAddr) {
    if (UserAddr == 0)
      return true;
    auto It = Chunks.find(UserAddr);
    if (It == Chunks.end() || !It->second.Live)
      return false;
    ShadowManager Shadow(P.M.Mem);
    // A zero-size chunk has no bytes to relabel; its surrounding red
    // zones stay poisoned, so use-after-free is still caught.
    Shadow.poison(UserAddr, It->second.UserSize, shadowval::HeapFreed);
    It->second.Live = false;
    ++Frees;
    return true;
  }

  unsigned Redzone;
  std::map<uint64_t, Chunk> Chunks;
  mutable std::mutex AllocMtx;
};

} // namespace janitizer

#endif // JANITIZER_JASAN_ALLOCATOR_H
