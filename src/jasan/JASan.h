//===- jasan/JASan.h - Hybrid binary AddressSanitizer ----------------------===//
///
/// \file
/// JASan (§4.1): a binary memory sanitizer built as a Janitizer security
/// technique.
///
///  - Heap objects get full red-zone protection through allocator
///    interposition (the LD_PRELOAD analogue).
///  - Stack protection works at stack-frame granularity by poisoning the
///    frame's canary slot between prologue and epilogue (Retrowrite-style,
///    §4.1.1); globals are not protected (no type information in
///    binaries).
///  - The static pass classifies every load/store: statically safe
///    (SCEV-elided, with hoisted preheader checks), or checked — carrying
///    precomputed register/flag liveness so the inline instrumentation
///    saves and restores as little as possible.
///  - The dynamic fallback instruments every load/store of statically
///    unseen blocks conservatively (all scratch state saved) and detects
///    block-local canary idioms.
///
/// Instrumentation is inlined as meta-instructions (no clean calls), the
/// design point §4.1.1 credits for JASan's performance.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_JASAN_JASAN_H
#define JANITIZER_JASAN_JASAN_H

#include "core/JanitizerDynamic.h"
#include "core/SecurityTool.h"
#include "jasan/Allocator.h"
#include "jasan/Shadow.h"

#include <atomic>
#include <set>

namespace janitizer {

struct JASanOptions {
  /// Use the precomputed liveness in rules to skip dead saves/restores
  /// (JASan-hybrid "full" vs "base" in Figure 8).
  bool UseLiveness = true;
  /// Stop the process at the first violation (ASan's default); when false,
  /// violations are recorded and execution continues (used by the Juliet
  /// accounting, which counts all reported violations).
  bool AbortOnViolation = false;
  /// Red-zone width per side.
  unsigned RedzoneBytes = 64;
};

/// Plan for scratch registers and flag preservation around an inline
/// instrumentation sequence.
struct ScratchPlan {
  Reg S0 = Reg::R0;
  Reg S1 = Reg::R1;
  bool SaveS0 = true;
  bool SaveS1 = true;
  bool SaveFlags = true;

  unsigned pushCount() const {
    return (SaveS0 ? 1 : 0) + (SaveS1 ? 1 : 0) + (SaveFlags ? 1 : 0);
  }
};

/// Chooses scratch registers avoiding \p OperandRegs. When \p Conservative
/// is false, registers in \p FreeRegs need no save/restore and dead flags
/// need no preservation.
ScratchPlan planScratch(uint16_t FreeRegs, bool FlagsLive,
                        uint16_t OperandRegs, bool Conservative);

class JASanTool : public SecurityTool {
public:
  explicit JASanTool(JASanOptions Opts = {}) : Opts(Opts), Alloc(Opts.RedzoneBytes) {}

  std::string name() const override { return "jasan"; }

  // Static plug-in pass.
  void runStaticPass(const StaticContext &Ctx, RuleFile &Out) override;

  // Dynamic side.
  void instrumentWithRules(
      JanitizerDynamic &D, CacheBlock &Block, BlockBuilder &B,
      const std::vector<DecodedInstrRT> &Instrs,
      const std::unordered_map<uint64_t, std::vector<RewriteRule>> &InstrRules)
      override;
  void instrumentFallback(JanitizerDynamic &D, CacheBlock &Block,
                          BlockBuilder &B,
                          const std::vector<DecodedInstrRT> &Instrs) override;
  void onModuleLoad(JanitizerDynamic &D, const LoadedModule &LM) override;
  bool interceptTarget(JanitizerDynamic &D, uint64_t Target) override;
  bool isInterposedTarget(JanitizerDynamic &D, uint64_t Target) override {
    // Relaxed loads: called lock-free from every dispatcher thread while
    // dlopen on another thread may still be resolving entry points.
    return Target &&
           (Target == MallocAddr.load(std::memory_order_relaxed) ||
            Target == FreeAddr.load(std::memory_order_relaxed) ||
            Target == CallocAddr.load(std::memory_order_relaxed) ||
            Target == ReallocAddr.load(std::memory_order_relaxed) ||
            Target == MemmoveAddr.load(std::memory_order_relaxed));
  }
  HookAction onTrap(JanitizerDynamic &D, uint8_t TrapCode,
                    uint64_t PC) override;

  RedzoneAllocator &allocator() { return Alloc; }

  /// Snapshot plumbing: the allocator's chunk map and counters are the
  /// only mutable state that survives a run boundary — interposition
  /// addresses re-resolve during module-load replay, and the shadow
  /// poison travels with the guest memory image.
  std::vector<uint8_t> captureState() override { return Alloc.serializeState(); }
  Error restoreState(const std::vector<uint8_t> &Bytes) override {
    // An empty image means "no captured state": keep the clean cold-start
    // allocator instead of rejecting the snapshot.
    return Bytes.empty() ? Error::success() : Alloc.deserializeState(Bytes);
  }

private:
  void emitShadowCheck(BlockBuilder &B, const MemOperand &Mem, unsigned Size,
                       uint64_t InstrAddr, unsigned AppInstrSize,
                       const ScratchPlan &Plan);
  void emitCanaryShadowWrite(BlockBuilder &B, const MemOperand &SlotOperand,
                             uint8_t Value, const ScratchPlan &Plan);

  JASanOptions Opts;
  RedzoneAllocator Alloc;
  // Resolved under the loader's serialization; read concurrently by every
  // dispatcher thread, hence atomic.
  std::atomic<uint64_t> MallocAddr{0};
  std::atomic<uint64_t> FreeAddr{0};
  std::atomic<uint64_t> CallocAddr{0};
  std::atomic<uint64_t> ReallocAddr{0};
  std::atomic<uint64_t> MemmoveAddr{0};
};

} // namespace janitizer

#endif // JANITIZER_JASAN_JASAN_H
