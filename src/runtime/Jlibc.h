//===- runtime/Jlibc.h - Guest runtime library sources --------------------===//
///
/// \file
/// Generates the guest runtime library "libjz.so" (the project's libc
/// analogue) and "libjfortran.so" (a low-level library exhibiting the
/// control-flow abnormalities §4.2.3 of the paper discusses: hand-written
/// assembly that breaks callee-saved conventions, calls into the middle of
/// functions, and data islands inside code sections).
///
/// libjz.so exports: malloc, free, realloc, calloc, memset, memcpy,
/// memmove, strlen, qsort, print_u64, print_str, exit, __stack_chk_fail,
/// and the threading veneers thread_create, thread_join, thread_exit,
/// mutex_init, mutex_lock, mutex_unlock (CAS + futex over the kernel
/// thread syscalls; malloc/free serialize on an internal heap mutex so
/// guest threads can allocate concurrently). qsort invokes a comparison
/// callback provided by the application — the cross-module callback pattern
/// that defeats Lockdown's heuristics in the paper's soundness study.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_RUNTIME_JLIBC_H
#define JANITIZER_RUNTIME_JLIBC_H

#include "jelf/Module.h"
#include "support/Error.h"

#include <string>

namespace janitizer {

/// Assembly source of libjz.so (PIC shared object).
std::string jlibcSource();

/// Assembly source of libjfortran.so (PIC shared object with hand-written
/// assembly abnormalities).
std::string jfortranSource();

/// Assembles libjz.so. The source is generated, so failure indicates an
/// assembler regression; the error propagates (with context) rather than
/// aborting, letting top-level callers report it cleanly via cantFail().
ErrorOr<Module> buildJlibc();

/// Assembles libjfortran.so. Same error contract as buildJlibc().
ErrorOr<Module> buildJfortran();

} // namespace janitizer

#endif // JANITIZER_RUNTIME_JLIBC_H
