//===- runtime/Jlibc.cpp --------------------------------------------------==//

#include "runtime/Jlibc.h"

#include "jasm/Assembler.h"
#include "support/Error.h"

using namespace janitizer;

std::string janitizer::jlibcSource() {
  return R"(
    .module libjz.so
    .pic
    .shared

    .section bss
    free_head: .zero 8
    init_flag: .zero 8
    heap_lock: .zero 8

    ; The initializer runs from the loader's startup path, exercising .init
    ; control-flow recovery in the static analyzer.
    .section init
    libjz_init:
      la r5, free_head
      movi r6, 0
      st8 [r5], r6
      la r5, init_flag
      movi r6, 1
      st8 [r5], r6
      ret

    .section text

    .global exit
    .func exit
    exit:
      syscall 0
    .endfunc

    .global __stack_chk_fail
    .func __stack_chk_fail
    __stack_chk_fail:
      trap 0
    .endfunc

    ; malloc(r0 = size) -> r0. Guest threads share the free list, so the
    ; public entry serializes on heap_lock around the unlocked body.
    .global malloc
    .func malloc
    malloc:
      push r9
      mov r9, r0
      la r0, heap_lock
      call mutex_lock
      mov r0, r9
      call malloc_unlocked
      mov r9, r0
      la r0, heap_lock
      call mutex_unlock
      mov r0, r9
      pop r9
      ret
    .endfunc

    ; free(r0 = ptr): locked wrapper like malloc.
    .global free
    .func free
    free:
      push r9
      mov r9, r0
      la r0, heap_lock
      call mutex_lock
      mov r0, r9
      call free_unlocked
      la r0, heap_lock
      call mutex_unlock
      pop r9
      ret
    .endfunc

    ; malloc_unlocked(r0 = size) -> r0. First-fit free list; chunks carry a
    ; 16-byte header [size][next]. Sizes are rounded up to 16. Requires
    ; heap_lock held.
    .func malloc_unlocked
    malloc_unlocked:
      addi r0, 15
      andi r0, -16
      la r5, free_head
      mov r6, r5
      ld8 r7, [r5]
    m_loop:
      cmpi r7, 0
      je m_grow
      ld8 r8, [r7]
      cmp r8, r0
      jae m_take
      mov r6, r7
      addi r6, 8
      ld8 r7, [r7 + 8]
      jmp m_loop
    m_take:
      ld8 r8, [r7 + 8]
      st8 [r6], r8
      mov r0, r7
      addi r0, 16
      ret
    m_grow:
      mov r5, r0
      addi r0, 16
      syscall 2
      st8 [r0], r5
      movi r8, 0
      st8 [r0 + 8], r8
      addi r0, 16
      ret
    .endfunc

    ; free_unlocked(r0 = ptr): push the chunk on the free list. Requires
    ; heap_lock held.
    .func free_unlocked
    free_unlocked:
      cmpi r0, 0
      je f_done
      subi r0, 16
      la r5, free_head
      ld8 r6, [r5]
      st8 [r0 + 8], r6
      st8 [r5], r0
    f_done:
      ret
    .endfunc

    ; realloc(r0 = ptr, r1 = size) -> r0. realloc(NULL, n) is malloc(n);
    ; realloc(p, 0) frees p and returns NULL; otherwise allocate new,
    ; copy min(old, new) bytes (old size from the chunk header at p-16)
    ; and free the old chunk. The migration copy uses memmove: a first-fit
    ; reuse of a previously freed chunk can hand back memory overlapping
    ; the old allocation, where memcpy's forward loop would clobber
    ; not-yet-copied source bytes.
    .global realloc
    .func realloc
    realloc:
      cmpi r0, 0
      je r_null
      cmpi r1, 0
      je r_zero
      push r9
      push r10
      push r11
      mov r9, r0
      mov r10, r1
      mov r11, r9
      subi r11, 16
      ld8 r11, [r11]
      mov r0, r10
      call malloc
      push r0
      mov r2, r11
      cmp r10, r11
      jae r_copy
      mov r2, r10
    r_copy:
      mov r1, r9
      call memmove
      mov r0, r9
      call free
      pop r0
      pop r11
      pop r10
      pop r9
      ret
    r_null:
      mov r0, r1
      call malloc
      ret
    r_zero:
      call free
      movi r0, 0
      ret
    .endfunc

    ; calloc(r0 = n, r1 = size) -> zeroed allocation.
    .global calloc
    .func calloc
    calloc:
      mul r0, r1
      push r9
      mov r9, r0
      call malloc
      push r0
      movi r1, 0
      mov r2, r9
      call memset
      pop r0
      pop r9
      ret
    .endfunc

    ; memset(r0 = dst, r1 = byte, r2 = n) -> dst.
    .global memset
    .func memset
    memset:
      movi r5, 0
    ms_loop:
      cmp r5, r2
      jae ms_done
      st1 [r0 + r5], r1
      addi r5, 1
      jmp ms_loop
    ms_done:
      ret
    .endfunc

    ; memcpy(r0 = dst, r1 = src, r2 = n) -> dst.
    .global memcpy
    .func memcpy
    memcpy:
      movi r5, 0
    mc_loop:
      cmp r5, r2
      jae mc_done
      ld1 r6, [r1 + r5]
      st1 [r0 + r5], r6
      addi r5, 1
      jmp mc_loop
    mc_done:
      ret
    .endfunc

    ; memmove(r0 = dst, r1 = src, r2 = n) -> dst. Overlap-safe: copies
    ; backward when dst lands inside [src, src+n) so source bytes are
    ; consumed before the copy overwrites them.
    .global memmove
    .func memmove
    memmove:
      cmp r0, r1
      je mm_done
      jb mm_fwd
      mov r5, r2
    mm_back:
      cmpi r5, 0
      je mm_done
      subi r5, 1
      ld1 r6, [r1 + r5]
      st1 [r0 + r5], r6
      jmp mm_back
    mm_fwd:
      movi r5, 0
    mm_floop:
      cmp r5, r2
      jae mm_done
      ld1 r6, [r1 + r5]
      st1 [r0 + r5], r6
      addi r5, 1
      jmp mm_floop
    mm_done:
      ret
    .endfunc

    ; --- pthread-shaped threading veneers over the kernel primitives ---

    ; thread_create(r0 = entry, r1 = arg) -> tid (or ~0 on failure). The
    ; kernel gives the new thread its own stack, a canary tp, r0 = arg, and
    ; a thread-exit sentinel return address, so a plain function works as a
    ; thread body.
    .global thread_create
    .func thread_create
    thread_create:
      syscall 9
      ret
    .endfunc

    ; thread_join(r0 = tid) -> the target's exit value (its r0 at exit).
    ; Blocks until the target exits; joining self or a bad tid returns ~0.
    .global thread_join
    .func thread_join
    thread_join:
      syscall 10
      ret
    .endfunc

    ; thread_exit(r0 = value): terminates the calling thread. Never returns.
    .global thread_exit
    .func thread_exit
    thread_exit:
      syscall 11
      ret
    .endfunc

    ; mutex_init(r0 = mutex): word 0 = unlocked.
    .global mutex_init
    .func mutex_init
    mutex_init:
      movi r5, 0
      st8 [r0], r5
      ret
    .endfunc

    ; mutex_lock(r0 = mutex): CAS 0 -> 1; on contention futex-wait while
    ; the word reads 1 (the kernel re-checks the value under its lock, so
    ; an unlock between our failed CAS and the wait cannot be lost).
    .global mutex_lock
    .func mutex_lock
    mutex_lock:
      mov r8, r0
    ml_try:
      movi r5, 0
      movi r6, 1
      cas r5, r6, [r8]
      je ml_done
      mov r0, r8
      movi r1, 0
      movi r2, 1
      syscall 12
      jmp ml_try
    ml_done:
      ret
    .endfunc

    ; mutex_unlock(r0 = mutex): store 0 and futex-wake all waiters.
    .global mutex_unlock
    .func mutex_unlock
    mutex_unlock:
      mov r8, r0
      movi r5, 0
      st8 [r8], r5
      mov r0, r8
      movi r1, 1
      syscall 12
      ret
    .endfunc

    ; strlen(r0 = s) -> r0.
    .global strlen
    .func strlen
    strlen:
      movi r5, 0
    sl_loop:
      ld1 r6, [r0 + r5]
      cmpi r6, 0
      je sl_done
      addi r5, 1
      jmp sl_loop
    sl_done:
      mov r0, r5
      ret
    .endfunc

    ; qsort(r0 = base, r1 = n, r2 = elemsize (must be 8), r3 = cmp).
    ; Insertion sort calling the application-provided comparison callback —
    ; a cross-module indirect call whose target is typically neither
    ; exported nor imported (the Lockdown false-positive case).
    ; The frame is canary protected.
    .global qsort
    .func qsort
    qsort:
      subi sp, 48
      mov r5, tp
      st8 [sp + 32], r5
      push r9
      push r10
      push r11
      push r12
      mov r9, r0
      mov r10, r1
      mov r11, r3
      movi r12, 1
    q_outer:
      cmp r12, r10
      jae q_done
      ld8 r6, [r9 + r12*8]
      st8 [sp + 40], r6
      mov r7, r12
    q_inner:
      cmpi r7, 0
      je q_insert
      mov r8, r7
      subi r8, 1
      ld8 r0, [r9 + r8*8]
      ld8 r1, [sp + 40]
      push r7
      push r8
      callr r11
      pop r8
      pop r7
      cmpi r0, 0
      jle q_insert
      ld8 r5, [r9 + r8*8]
      st8 [r9 + r7*8], r5
      mov r7, r8
      jmp q_inner
    q_insert:
      ld8 r6, [sp + 40]
      st8 [r9 + r7*8], r6
      addi r12, 1
      jmp q_outer
    q_done:
      pop r12
      pop r11
      pop r10
      pop r9
      ld8 r5, [sp + 32]
      cmp r5, tp
      jne q_smash
      addi sp, 48
      ret
    q_smash:
      call __stack_chk_fail
    .endfunc

    ; print_u64(r0): decimal representation to the process output.
    ; Canary-protected on-stack digit buffer.
    .global print_u64
    .func print_u64
    print_u64:
      subi sp, 48
      mov r5, tp
      st8 [sp + 40], r5
      mov r5, r0
      movi r6, 32
    pu_loop:
      subi r6, 1
      mov r7, r5
      movi r8, 10
      div r5, r8
      mov r8, r5
      muli r8, 10
      sub r7, r8
      addi r7, 48
      st1 [sp + r6], r7
      cmpi r5, 0
      jne pu_loop
      lea r0, [sp + r6]
      movi r1, 32
      sub r1, r6
      syscall 1
      ld8 r5, [sp + 40]
      cmp r5, tp
      jne pu_smash
      addi sp, 48
      ret
    pu_smash:
      call __stack_chk_fail
    .endfunc

    ; print_str(r0 = NUL-terminated string).
    .global print_str
    .func print_str
    print_str:
      push r9
      mov r9, r0
      call strlen
      mov r1, r0
      mov r0, r9
      syscall 1
      pop r9
      ret
    .endfunc
  )";
}

std::string janitizer::jfortranSource() {
  return R"(
    .module libjfortran.so
    .pic
    .shared

    .section rodata
    scale_table:
      .word8 1
      .word8 2
      .word8 4
      .word8 8

    .section text

    ; Hand-written assembly that breaks the calling convention: fast_scale
    ; CLOBBERS the callee-saved register r9 (leaves the scaled value there)
    ; and its caller vsum_scaled READS r9 afterwards. This is the §4.1.2
    ; pattern: intra-procedural liveness in the callee would conclude r9 is
    ; dead and free for instrumentation scratch use — which breaks the
    ; caller. The inter-procedural extension must treat r9 as live.
    .func fast_scale
    fast_scale:
      mov r9, r0
      shli r9, 2
      mov r0, r9
      ret
    .endfunc

    ; vsum_scaled(r0 = vec, r1 = n) -> sum of 4*vec[i], relying on r9
    ; surviving the fast_scale call.
    .global vsum_scaled
    .func vsum_scaled
    vsum_scaled:
      push r10
      push r11
      push r12
      mov r10, r0
      mov r11, r1
      movi r12, 0
      movi r6, 0
    vs_loop:
      cmp r12, r11
      jae vs_done
      ld8 r0, [r10 + r12*8]
      push r6
      call fast_scale
      pop r6
      add r6, r9        ; uses the value fast_scale left in r9
      addi r12, 1
      jmp vs_loop
    vs_done:
      mov r0, r6
      pop r12
      pop r11
      pop r10
      ret
    .endfunc

    ; A call that targets the middle of another function (not a detected
    ; function boundary): kernel_entry jumps into the accumulation loop of
    ; kernel_core. JCFI handles this with a Lockdown-style allow list.
    .func kernel_core
    kernel_core:
      movi r5, 0
      movi r6, 0
    kc_mid:
      cmp r5, r1
      jae kc_done
      ld8 r7, [r0 + r5*8]
      add r6, r7
      addi r5, 1
      jmp kc_mid
    kc_done:
      mov r0, r6
      ret
    .endfunc

    .global kernel_entry
    .func kernel_entry
    kernel_entry:
      movi r5, 0
      movi r6, 0
      call kc_mid       ; call into the middle of kernel_core
      ret
    .endfunc

    ; stencil3(r0 = vec, r1 = n, r2 = out): 3-point stencil with
    ; loop-invariant bounds, SCEV-analyzable induction.
    .global stencil3
    .func stencil3
    stencil3:
      movi r5, 1
      mov r6, r1
      subi r6, 1
    st_loop:
      cmp r5, r6
      jae st_done
      mov r7, r5
      subi r7, 1
      ld8 r8, [r0 + r7*8]
      ld8 r7, [r0 + r5*8]
      add r8, r7
      mov r7, r5
      addi r7, 1
      ld8 r7, [r0 + r7*8]
      add r8, r7
      st8 [r2 + r5*8], r8
      addi r5, 1
      jmp st_loop
    st_done:
      ret
    .endfunc
  )";
}

ErrorOr<Module> janitizer::buildJlibc() {
  ErrorOr<Module> M = assembleModule(jlibcSource());
  if (!M)
    return M.takeError().withContext("assembling libjz.so");
  return M;
}

ErrorOr<Module> janitizer::buildJfortran() {
  ErrorOr<Module> M = assembleModule(jfortranSource());
  if (!M)
    return M.takeError().withContext("assembling libjfortran.so");
  return M;
}
