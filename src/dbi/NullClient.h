//===- dbi/NullClient.h - Pass-through DBI tool ----------------------------===//
///
/// \file
/// The null client: translates every block verbatim. Its overhead over
/// native execution is the engine's own cost (translation + indirect
/// lookups) — the "Null client" series in Figures 8 and 11.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_DBI_NULLCLIENT_H
#define JANITIZER_DBI_NULLCLIENT_H

#include "dbi/Dbi.h"

namespace janitizer {

class NullClient : public DbiTool {
public:
  std::string name() const override { return "null"; }

  void instrumentBlock(DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
                       const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
};

} // namespace janitizer

#endif // JANITIZER_DBI_NULLCLIENT_H
