//===- dbi/Dbi.h - Dynamic binary modification engine ----------------------===//
///
/// \file
/// A basic-block-at-a-time dynamic binary modifier in the mold of
/// DynamoRIO: application code is discovered one block at a time as it is
/// about to execute, handed to a tool for instrumentation, and placed into
/// a code cache. Translated blocks execute application instructions with
/// their *original* addresses (so pc-relative operands and pushed return
/// addresses stay correct) plus tool-inserted meta-instructions.
///
/// Cost model (see DESIGN.md §5 and §5e):
///  - building a block charges TranslationPerInstr per app instruction;
///  - direct transfers between cached blocks are linked (no charge): the
///    exit slot of the source block is patched to the target block on
///    first execution and later transitions bypass the dispatcher and the
///    code-cache hash lookup entirely;
///  - a dynamic indirect transfer (indirect call/jump, return) pays
///    IndirectLookup on an inline-cache miss — the code-cache hash lookup
///    that dominates DynamoRIO's null-client overhead — and only IblHit
///    when the per-site indirect-branch inline cache hits;
///  - hot block heads (ExecCount crossing a threshold) get a NET-style
///    trace: the next-executing tail is stitched into a superblock whose
///    internal direct transfers cost nothing at all;
///  - host hooks model clean-calls: CleanCallBase plus a declared cost.
///    Inline meta-instructions instead pay only their own interpreter
///    cycles, which is how hand-written inlined instrumentation (§4.1.1)
///    beats clean-calls.
///
/// Threading model (DESIGN.md §5g). One engine serves every guest thread:
/// each guest thread created by the ThreadCreate syscall gets its own
/// host thread running the dispatcher loop against a *shared* code cache.
///
///  - Cache structure (Cache / Traces / IblTable) is guarded by a
///    read-mostly shared_mutex; block *contents* are immutable after
///    instrumentBlock returns, so executing a block takes no lock.
///  - Link and per-site IBL slots are atomic pointers to immutable,
///    generation-stamped records: a reader either sees a whole record or
///    none, and unlink-before-erase (bump LinkGen, then retire) makes
///    stale records unfollowable before their target can die.
///  - Retired blocks go to an epoch-stamped graveyard. Every dispatcher
///    loop pins the global epoch on entry and goes quiescent before any
///    blocking wait; a retired block is freed only once every pin has
///    advanced past its retirement epoch — generalizing the seed's
///    "free at next dispatcher entry" rule to many threads.
///  - Each thread carries its own stats, trace-recorder state and (in
///    multi-threaded runs only) an L0 indirect-branch cache, so the hot
///    path shares no mutable scalars between threads.
///
/// Links, IBL entries and traces are pure performance: they are torn down
/// by flushRange / module unload via a generation counter
/// (unlink-before-erase, so a stale link can never be followed), and the
/// JZ_NO_LINK / JZ_NO_TRACE environment kill-switches force the engine
/// back to dispatch-every-block for differential testing.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_DBI_DBI_H
#define JANITIZER_DBI_DBI_H

#include "dbi/Jit.h"
#include "vm/Process.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace janitizer {

namespace dbicost {
constexpr uint64_t TranslationPerInstr = 40; ///< block build, first time
constexpr uint64_t IndirectLookup = 7;       ///< indirect CTI, IBL miss
constexpr uint64_t IblHit = 2;               ///< indirect CTI, IBL hit
constexpr uint64_t CleanCallBase = 35;       ///< context switch to a hook
constexpr uint64_t ModuleLoadWork = 200;     ///< rule-file load etc.
} // namespace dbicost

/// Engine cost knobs. Defaults model DynamoRIO; baselines with their own
/// translators (Valgrind's heavyweight IR, Lockdown's lean DBT) override
/// them.
struct DbiCostModel {
  uint64_t TranslationPerInstr = dbicost::TranslationPerInstr;
  uint64_t IndirectLookup = dbicost::IndirectLookup;
  uint64_t IblHit = dbicost::IblHit;
  uint64_t CleanCallBase = dbicost::CleanCallBase;
  /// Extra cycles charged per executed application instruction (models
  /// translation quality: 0 for DynamoRIO-class translators, >0 for
  /// heavyweight IR interpretation a la Valgrind).
  uint64_t PerAppInstr = 0;
  /// Translator capabilities. DynamoRIO-class translators link direct
  /// transfers between cached blocks and stitch hot paths into traces;
  /// heavyweight IR baselines (Valgrind) re-enter their dispatcher on
  /// every block transition and do neither.
  bool LinkBlocks = true;
  bool BuildTraces = true;
  /// Tier hot blocks/traces into host-x64 stencils (DESIGN.md §5i).
  /// Off for baselines whose translators the cost model interprets
  /// (their PerAppInstr charge models the quality gap the JIT removes).
  bool JitBlocks = true;
};

class DbiEngine;
struct CacheBlock;

/// What a host hook asks the dispatcher to do next.
enum class HookAction : uint8_t {
  Continue,     ///< fall through to the next cache op
  SkipBlockRest,///< abandon the rest of the block (rarely used)
  Violation,    ///< a security violation was recorded; continue execution
  Abort,        ///< stop the process (fatal violation)
};

/// One operation in a translated cache block.
struct CacheOp {
  enum class Kind : uint8_t {
    App,  ///< original application instruction (OrigAddr valid)
    Meta, ///< tool-inserted inline instruction (executed, charged normally)
    Hook, ///< host callback (clean-call cost model)
  };
  Kind K = Kind::App;
  Instruction I;
  uint64_t OrigAddr = 0;
  /// For Meta conditional branches: index of the op to jump to when taken.
  uint32_t SkipToIdx = ~0u;
  /// Hook payload.
  uint32_t HookId = 0;
  uint64_t HookData[2] = {0, 0};
  uint64_t HookCost = 0; ///< added to CleanCallBase (or alone when inline)
  /// When true the hook models a hand-inlined assembly sequence: it is
  /// charged HookCost only, with no clean-call context switch.
  bool InlineHook = false;
};

/// A resolved direct-exit link. Immutable once published through the
/// block's atomic slot: concurrent readers either see the whole record or
/// a previous one, never a half-written patch. Followed only while Gen
/// matches the engine's link generation (unlink-before-erase) and the
/// dynamic target matches the recorded one (traces have several direct
/// exits sharing the two slots).
struct LinkRec {
  CacheBlock *Target = nullptr;
  uint64_t TargetAddr = 0;
  uint64_t Gen = 0;
};

/// A per-site indirect-branch inline-cache entry; same publication and
/// generation discipline as LinkRec.
struct IblRec {
  uint64_t Target = 0;
  CacheBlock *Blk = nullptr;
  uint64_t Gen = 0;
};

/// A translated block in the code cache (or a stitched trace, when
/// IsTrace is set — see DESIGN.md §5e). Everything except the atomic
/// link/IBL slots, the execution counter and the victim cursor is
/// immutable once the block is published in the cache.
struct CacheBlock {
  uint64_t AppStart = 0; ///< run-time address of the original block head
  /// One past the last decoded application byte — flushRange evicts on
  /// [AppStart, AppEnd) overlap, not just head containment.
  uint64_t AppEnd = 0;
  std::vector<CacheOp> Ops;
  /// When the block was cut without a terminator (it ran into an already
  /// known block head), control continues here.
  uint64_t FallthroughTarget = 0;
  /// Tool classification: true when the block had static-analysis rules.
  bool StaticallySeen = false;
  std::atomic<uint64_t> ExecCount{0};
  size_t AppInstrs = 0;

  /// Direct-exit link slots (see LinkRec).
  std::atomic<const LinkRec *> LinkTaken{nullptr}; ///< taken jump / call exit
  std::atomic<const LinkRec *> LinkFall{nullptr};  ///< fall-through exit

  /// Per-site indirect-branch inline cache (the first shared IBL level):
  /// a tiny set-associative cache of recent indirect targets of *this*
  /// block's terminator, backed by the engine's global IBL table.
  static constexpr unsigned IblWays = 4;
  std::atomic<const IblRec *> Ibl[IblWays] = {};
  std::atomic<uint8_t> IblVictim{0}; ///< round-robin replacement cursor

  /// Trace (superblock) state. A trace concatenates the ops of its
  /// constituent blocks; internal direct transfers are resolved to op
  /// indices via TraceEntries and cost nothing.
  bool IsTrace = false;
  /// Constituent head address -> op index of its first op in Ops.
  std::vector<std::pair<uint64_t, uint32_t>> TraceEntries;
  /// Constituent [AppStart, AppEnd) ranges, for flush-overlap eviction.
  std::vector<std::pair<uint64_t, uint64_t>> AppRanges;
  /// Static/dynamic classification of the constituents (ISSUE: traces are
  /// classified per constituent block, not as a unit).
  unsigned StaticConstituents = 0;
  unsigned DynamicConstituents = 0;

  /// Op index of the constituent starting at \p Addr, or null.
  const uint32_t *traceEntryFor(uint64_t Addr) const {
    for (const auto &E : TraceEntries)
      if (E.first == Addr)
        return &E.second;
    return nullptr;
  }

  /// Head address of the constituent whose first op is \p OpIdx, or null
  /// when \p OpIdx is not a constituent boundary.
  const uint64_t *traceHeadAtOp(uint32_t OpIdx) const {
    for (const auto &E : TraceEntries)
      if (E.second == OpIdx)
        return &E.first;
    return nullptr;
  }

  /// JIT tier state (DESIGN.md §5i). Tiering is one-way and sticky: a
  /// block starts Cold, one thread wins the Cold->Busy CAS and compiles,
  /// then publishes Ready (stencil installed) or Refused (shape outside
  /// the stencil set; the block stays on the interpreter tier forever).
  /// The stencil is owned by the block, so retirement through the
  /// graveyard tears it down with translation-identical timing.
  enum : uint8_t { JitCold = 0, JitBusy, JitReady, JitRefused };
  std::atomic<uint8_t> JitState{JitCold};
  std::atomic<const jit::JitCode *> Jit{nullptr};
  std::unique_ptr<jit::JitCode> JitOwned;

  /// True when any decoded application byte lies in [Addr, End).
  bool overlapsRange(uint64_t Addr, uint64_t End) const {
    if (!IsTrace)
      return AppStart < End && AppEnd > Addr;
    for (const auto &R : AppRanges)
      if (R.first < End && R.second > Addr)
        return true;
    return false;
  }
};

/// Context handed to the tool when a new block is built. The tool walks
/// the decoded application instructions and appends ops.
class BlockBuilder {
public:
  explicit BlockBuilder(CacheBlock &Block) : Block(Block) {}

  /// Appends the application instruction (must be called exactly once per
  /// decoded instruction, in order).
  void app(const Instruction &I, uint64_t OrigAddr) {
    CacheOp Op;
    Op.K = CacheOp::Kind::App;
    Op.I = I;
    Op.OrigAddr = OrigAddr;
    Block.Ops.push_back(Op);
    ++Block.AppInstrs;
  }

  /// Appends an inline meta-instruction.
  void meta(const Instruction &I) {
    CacheOp Op;
    Op.K = CacheOp::Kind::Meta;
    Op.I = I;
    Block.Ops.push_back(Op);
  }

  /// Appends a conditional meta-branch; call bind() later with the target
  /// op index. Returns the index of the branch op.
  size_t metaBranch(Opcode Cc) {
    CacheOp Op;
    Op.K = CacheOp::Kind::Meta;
    Op.I.Op = Cc;
    Block.Ops.push_back(Op);
    return Block.Ops.size() - 1;
  }

  /// Binds a previously emitted meta-branch to jump to the *next* op that
  /// will be appended.
  void bindToNext(size_t BranchIdx) {
    Block.Ops[BranchIdx].SkipToIdx =
        static_cast<uint32_t>(Block.Ops.size());
  }

  /// Appends a host hook (clean-call).
  void hook(uint32_t HookId, uint64_t D0 = 0, uint64_t D1 = 0,
            uint64_t ExtraCost = 0) {
    CacheOp Op;
    Op.K = CacheOp::Kind::Hook;
    Op.HookId = HookId;
    Op.HookData[0] = D0;
    Op.HookData[1] = D1;
    Op.HookCost = ExtraCost;
    Block.Ops.push_back(Op);
  }

  /// Appends a host hook that models an inlined assembly sequence costing
  /// \p Cost cycles (no clean-call context switch).
  void inlineHook(uint32_t HookId, uint64_t D0 = 0, uint64_t D1 = 0,
                  uint64_t Cost = 0) {
    CacheOp Op;
    Op.K = CacheOp::Kind::Hook;
    Op.HookId = HookId;
    Op.HookData[0] = D0;
    Op.HookData[1] = D1;
    Op.HookCost = Cost;
    Op.InlineHook = true;
    Block.Ops.push_back(Op);
  }

  size_t nextOpIndex() const { return Block.Ops.size(); }

private:
  CacheBlock &Block;
};

/// A decoded instruction at its run-time address (used at build time).
struct DecodedInstrRT {
  Instruction I;
  uint64_t Addr = 0;
};

/// A violation recorded during instrumented execution.
struct Violation {
  uint8_t Code = 0;     ///< TrapCode or tool-defined
  uint64_t PC = 0;      ///< original application address
  uint64_t Detail = 0;  ///< tool-specific (e.g. faulting address)
  std::string What;
};

/// The tool interface — the analogue of a DynamoRIO client.
///
/// Thread-safety contract: in multi-threaded guests every callback may be
/// invoked concurrently from several dispatcher threads. instrumentBlock
/// is the exception — the engine serializes it under the cache lock — but
/// onHook / onTrap / onIndirectTransfer / interceptTarget /
/// isInterposedTarget run lock-free on the execution hot path and must
/// synchronize any mutable tool state themselves. Use
/// DbiEngine::machine() for the *calling thread's* guest machine.
class DbiTool {
public:
  virtual ~DbiTool() = default;

  virtual std::string name() const = 0;

  /// A module was loaded (forwarded from the process loader). The tool
  /// typically loads the module's rewrite-rule file here.
  virtual void onModuleLoad(DbiEngine &E, const LoadedModule &LM) {}

  /// A module is about to be unloaded (dlclose). The engine has already
  /// flushed the module's cached blocks; the tool drops its per-module
  /// state (rule tables, target sets) here.
  virtual void onModuleUnload(DbiEngine &E, const LoadedModule &LM) {}

  /// Dynamically generated code became executable.
  virtual void onCodeMapped(DbiEngine &E, uint64_t Addr, uint64_t Len) {}

  /// Instruments one application block. \p Instrs are the decoded
  /// instructions at their run-time addresses. Implementations must emit
  /// every instruction via \p B.app() (in order), interleaving meta ops
  /// and hooks as needed, and may set Block.StaticallySeen.
  virtual void instrumentBlock(DbiEngine &E, CacheBlock &Block,
                               BlockBuilder &B,
                               const std::vector<DecodedInstrRT> &Instrs) = 0;

  /// Called when the dispatcher is about to transfer to \p Target; tools
  /// may interpose (allocator replacement). Returning true means the hook
  /// fully emulated the callee; execution resumes at the address left in
  /// the machine PC.
  virtual bool interceptTarget(DbiEngine &E, uint64_t Target) {
    return false;
  }

  /// True when \p Target is an interposition site (a target for which
  /// interceptTarget may return true). The engine never installs a link
  /// or IBL entry to such a target — linked transitions bypass the
  /// dispatcher, and the interposition probe must still fire on every
  /// visit. Tools overriding interceptTarget must override this
  /// consistently.
  virtual bool isInterposedTarget(DbiEngine &E, uint64_t Target) {
    return false;
  }

  /// A host hook op fired.
  virtual HookAction onHook(DbiEngine &E, const CacheOp &Op) {
    return HookAction::Continue;
  }

  /// A TRAP executed (either app TRAP or tool-inserted meta TRAP).
  /// Returning Continue resumes after the trap; Abort stops the run.
  virtual HookAction onTrap(DbiEngine &E, uint8_t TrapCode, uint64_t PC) {
    return HookAction::Abort;
  }

  /// A dynamic indirect control transfer is about to land at \p Target
  /// (after any inline checks already ran). For tools that verify edges in
  /// the dispatcher (dynamic-only baselines).
  virtual void onIndirectTransfer(DbiEngine &E, CTIKind Kind, uint64_t From,
                                  uint64_t Target) {}

  /// Serializes the tool's run-relevant mutable state (allocator chunk
  /// maps, shadow stacks, ...) for a StateFile snapshot. The engine is
  /// quiesced when this is called. Default: stateless tool, empty blob.
  virtual std::vector<uint8_t> captureState() { return {}; }

  /// Rebuilds the state captured by captureState() into a freshly
  /// constructed tool. A malformed blob must return an Error and leave
  /// the tool in its clean initial state — never crash (the caller then
  /// degrades to a cold start).
  virtual Error restoreState(const std::vector<uint8_t> &Bytes) {
    (void)Bytes;
    return Error::success();
  }
};

/// Statistics a run accumulates. Each dispatcher thread keeps its own
/// copy; run() folds them together, so the published numbers are totals
/// across every guest thread.
struct DbiStats {
  uint64_t BlocksBuilt = 0;
  uint64_t BlocksExecuted = 0;
  uint64_t IndirectLookups = 0; ///< indirect transfers that missed the IBL
  uint64_t CleanCalls = 0;
  uint64_t StaticBlocks = 0;  ///< built blocks with static rules
  uint64_t DynamicBlocks = 0; ///< built blocks without static rules
  uint64_t DispatchEntries = 0; ///< dispatcher entries (lookup + probe)
  uint64_t LinksFollowed = 0;   ///< direct transfers via a patched link
  uint64_t IblHits = 0;         ///< indirect transfers via the inline cache
  uint64_t IblMisses = 0;       ///< == IndirectLookups, kept for symmetry
  uint64_t TracesBuilt = 0;     ///< superblocks stitched
  uint64_t TraceTransitions = 0;///< in-trace constituent-to-constituent hops
  uint64_t JitCompiled = 0;     ///< blocks/traces compiled to stencils
  uint64_t JitExecs = 0;        ///< block executions on the jitted tier
  uint64_t JitRefused = 0;      ///< compilations refused (interp-tier stays)
  /// Peak executable-arena footprint (set once by run(), not folded).
  uint64_t JitArenaBytes = 0;

  /// Accumulates another thread's tallies into this one.
  void add(const DbiStats &O) {
    BlocksBuilt += O.BlocksBuilt;
    BlocksExecuted += O.BlocksExecuted;
    IndirectLookups += O.IndirectLookups;
    CleanCalls += O.CleanCalls;
    StaticBlocks += O.StaticBlocks;
    DynamicBlocks += O.DynamicBlocks;
    DispatchEntries += O.DispatchEntries;
    LinksFollowed += O.LinksFollowed;
    IblHits += O.IblHits;
    IblMisses += O.IblMisses;
    TracesBuilt += O.TracesBuilt;
    TraceTransitions += O.TraceTransitions;
    JitCompiled += O.JitCompiled;
    JitExecs += O.JitExecs;
    JitRefused += O.JitRefused;
  }

  /// Mirrors these counters into the process MetricsRegistry as jz.dbi.*
  /// (set semantics).
  void publishMetrics() const;
};

/// Per-dispatcher-thread engine state: one per guest thread. Referentially
/// stable (heap-allocated, owned by the engine) so the epoch scan can walk
/// every context while threads run.
struct ThreadContext {
  uint32_t Tid = 0;
  Machine *M = nullptr;
  DbiStats Stats;

  /// Trace recorder (NET): each thread records its own hot path.
  bool Recording = false;
  std::vector<CacheBlock *> TraceBuf;
  uint64_t RecordGen = 0; ///< link generation when recording started

  /// L0 indirect-branch cache: a per-thread direct-mapped cache in front
  /// of the shared per-site cache and the global IBL table. Consulted
  /// only in multi-threaded runs, so single-threaded cycle counts are
  /// bit-identical to the seed engine.
  static constexpr size_t L0Size = 64;
  struct L0Entry {
    uint64_t Target = 0;
    CacheBlock *Blk = nullptr;
    uint64_t Gen = 0;
  };
  L0Entry L0[L0Size] = {};

  /// Epoch-based-reclamation pin: the global epoch observed at dispatcher
  /// entry, or Quiescent while the thread holds no cache pointers (before
  /// its first dispatch, across blocking waits, after exit).
  static constexpr uint64_t Quiescent = ~0ull;
  std::atomic<uint64_t> Epoch{Quiescent};
};

/// The engine: owns the code cache and drives execution of a Process under
/// a tool. One engine instance serves every guest thread of the process.
class DbiEngine : public ModuleObserver {
public:
  DbiEngine(Process &P, DbiTool &Tool, DbiCostModel Costs = {});

  /// Runs the loaded program to completion under instrumentation. Guest
  /// threads created by the program each get a host dispatcher thread;
  /// run() returns once every host thread has finished. The first
  /// process-terminal event (exit, fatal trap, fault, step limit) wins.
  RunResult run(uint64_t MaxSteps = 1ull << 32);
  /// run() under full watchdog budgets (DESIGN.md §5h): per-thread step
  /// and cycle limits, a wall-clock deadline for the whole run, and a
  /// cooperative checkpoint stop (Status::StepLimit at the next block
  /// boundary once CheckpointAfterSteps is reached — the clean quiesce
  /// point StateFile::capture requires). A tripped cycle/wall watchdog
  /// ends the run as Status::Faulted with a structured "watchdog: ..."
  /// diagnostic; the host never shares a runaway guest's fate. Also
  /// respawns a dispatcher thread for every live sibling guest thread
  /// already in the process table (the resume path after a StateFile
  /// restore).
  RunResult run(const RunBudget &Budget);

  Process &process() { return P; }
  /// The guest machine of the *calling* dispatcher thread (the main
  /// machine outside run()). Tools use this in hooks to reach the
  /// registers of whichever thread triggered the hook.
  Machine &machine();
  const DbiStats &stats() const { return Stats; }
  /// Stable only after run() returns (or under external synchronization).
  const std::vector<Violation> &violations() const { return Violations; }

  /// Records a violation (used by tools from hooks/traps). Thread-safe.
  void recordViolation(uint8_t Code, uint64_t PC, uint64_t Detail,
                       std::string What);

  /// Flushes cached blocks and traces overlapping [Addr, Addr+Len) — for
  /// JIT regions and module unload. Any eviction bumps the link
  /// generation, so every outstanding link/IBL entry becomes unfollowable
  /// before the blocks are destroyed (unlink-before-erase); the blocks
  /// themselves are freed once every dispatcher thread has passed a
  /// quiescent point (epoch-based reclamation).
  void flushRange(uint64_t Addr, uint64_t Len);

  /// Charges extra cycles to the calling thread's guest machine (tools
  /// model work the cost table doesn't cover).
  void charge(uint64_t Cycles) { machine().addCycles(Cycles); }

  /// Installs the tier-exit predicate of the AOT runner (DESIGN.md §5j):
  /// when the dispatcher is about to transfer to an address for which the
  /// predicate returns true (an address inside a statically rewritten
  /// region), the run ends with Status::TierExit and the machine PC set to
  /// that address, so the caller can resume on the native tier. Checked
  /// before the dispatch entry is counted, so a fully-native segment between
  /// two tier switches contributes zero dispatch entries. Set before run();
  /// single-threaded guests only (the AOT tier has no sibling dispatchers).
  void setTierExit(std::function<bool(uint64_t)> Fn) {
    TierExit = std::move(Fn);
  }

  /// Link/trace introspection (tests, tooling).
  uint64_t linkGeneration() const {
    return LinkGen.load(std::memory_order_relaxed);
  }
  bool linkingEnabled() const { return Linking; }
  bool tracingEnabled() const { return Tracing; }
  /// True when the template-JIT tier is active (Costs.JitBlocks, host
  /// support, and no JZ_NO_JIT kill-switch).
  bool jitEnabled() const { return Jitting; }

  // ModuleObserver:
  void onModuleLoad(Process &Proc, const LoadedModule &LM) override;
  void onModuleUnload(Process &Proc, const LoadedModule &LM) override;
  void onCodeMapped(Process &Proc, uint64_t Addr, uint64_t Len) override;

private:
  /// Clean-call helpers reach tool/budget/violation state through this
  /// narrow bridge instead of befriending every helper.
  friend struct jit::JitSupport;

  /// The dispatcher loop, one invocation per guest thread (budgets in the
  /// Budget member). Publishes the process-terminal result (first wins)
  /// or returns silently when only its guest thread finished.
  void runThread(ThreadContext &TC);
  /// ThreadSpawnFn target: registers a context and starts a host thread.
  void spawnHostThread(uint32_t Tid, Machine &TM);
  void joinHostThreads();
  /// Publishes \p RR as the run's result if none is set yet, then stops
  /// the world (wakes blocked threads, dispatchers drain out).
  void publishTerminal(RunResult RR);

  /// Cache lookup/build; takes CacheMtx internally.
  CacheBlock *lookupOrBuild(uint64_t PC, ThreadContext &TC);
  /// Requires CacheMtx held exclusively.
  CacheBlock *buildBlockLocked(uint64_t PC, ThreadContext &TC);
  /// Code-cache lookup preferring a stitched trace over the plain block.
  /// Requires CacheMtx held (shared suffices).
  CacheBlock *findBlockLocked(uint64_t Addr);
  /// Makes every outstanding link and IBL entry unfollowable. Requires
  /// CacheMtx held exclusively.
  void invalidateLinksLocked();
  /// Trace-recording bookkeeping at block entry / indirect exit.
  void noteBlockEntered(ThreadContext &TC, CacheBlock *Block,
                        uint64_t ExecCount);
  void finishTrace(ThreadContext &TC);

  /// Moves dead blocks to the graveyard stamped with a fresh epoch.
  void retire(std::vector<std::unique_ptr<CacheBlock>> Dead);
  /// Frees graveyard entries every thread has provably let go of. Called
  /// while the calling thread is quiescent.
  void reclaimGraveyard();

  /// Allocates an immutable link/IBL record (engine-owned; records live
  /// until the engine dies, so a stale reader can always dereference).
  const LinkRec *makeLinkRec(CacheBlock *Target, uint64_t Addr, uint64_t Gen);
  const IblRec *makeIblRec(uint64_t Target, CacheBlock *Blk, uint64_t Gen);

  /// NET parameters: start recording when a block head gets this hot;
  /// stop stitching after this many constituents.
  static constexpr uint64_t TraceThreshold = 16;
  static constexpr size_t MaxTraceBlocks = 16;

  Process &P;
  DbiTool &Tool;
  DbiCostModel Costs;
  /// Budgets for the current run(); stable while dispatcher threads live.
  RunBudget Budget;
  std::chrono::steady_clock::time_point WallDeadline{};
  bool Linking = true; ///< Costs.LinkBlocks minus JZ_NO_LINK
  bool Tracing = true; ///< Costs.BuildTraces minus JZ_NO_TRACE/JZ_NO_LINK
  bool Jitting = false; ///< Costs.JitBlocks minus JZ_NO_JIT, host permitting
  /// ExecCount at which a block/trace tiers up (JZ_JIT_THRESHOLD).
  uint64_t JitThreshold = 16;
  /// AOT tier-exit predicate (see setTierExit); empty outside AOT runs.
  std::function<bool(uint64_t)> TierExit;
  /// W^X arena holding every published stencil; capped by
  /// JZ_JIT_ARENA_MAX bytes (exhaustion degrades to the interpreter).
  std::unique_ptr<ExecArena> JitArena;

  /// Cache structure lock: shared for lookups, exclusive for build /
  /// flush / trace-stitch / IBL-table writes. Nested inside the process
  /// LoaderMtx (module-load callbacks) and outside tool-internal locks.
  mutable std::shared_mutex CacheMtx;
  std::unordered_map<uint64_t, std::unique_ptr<CacheBlock>> Cache;
  /// Stitched superblocks, keyed by head address; consulted before Cache.
  std::unordered_map<uint64_t, std::unique_ptr<CacheBlock>> Traces;
  /// Global IBL table: app target address -> cached block, rebuilt lazily
  /// after each invalidation (it carries no generation of its own).
  std::unordered_map<uint64_t, CacheBlock *> IblTable;

  /// Epoch-based reclamation: blocks evicted while possibly still
  /// executing (by this thread — a syscall inside a block can unload the
  /// module containing it — or by a sibling thread) wait here until every
  /// dispatcher pin has advanced past their retirement epoch.
  struct RetiredBlock {
    std::unique_ptr<CacheBlock> Block;
    uint64_t Epoch = 0;
  };
  std::mutex GraveMtx;
  std::vector<RetiredBlock> Graveyard;
  std::atomic<uint64_t> GlobalEpoch{1};

  std::atomic<uint64_t> LinkGen{1};

  /// Immutable link/IBL records, owned here so stale pointers published
  /// in block slots remain dereferenceable for the engine's lifetime.
  std::mutex PoolMtx;
  std::vector<std::unique_ptr<LinkRec>> LinkPool;
  std::vector<std::unique_ptr<IblRec>> IblPool;

  /// Per-guest-thread contexts and their host threads.
  std::mutex CtxMtx;
  std::vector<std::unique_ptr<ThreadContext>> Contexts;
  std::vector<std::thread> HostThreads;
  std::atomic<bool> MtActive{false}; ///< a second thread ever existed
  std::atomic<bool> Done{false};     ///< a terminal result was published

  std::mutex ResultMtx;
  bool FinalSet = false;
  RunResult Final;

  DbiStats Stats; ///< folded per-thread stats, valid after run()
  std::mutex VioMtx;
  std::vector<Violation> Violations;
};

} // namespace janitizer

#endif // JANITIZER_DBI_DBI_H
