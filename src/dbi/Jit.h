//===- dbi/Jit.h - Template-JIT tier for the code cache --------------------===//
///
/// \file
/// The second execution tier of the DBI engine (DESIGN.md §5i): hot cache
/// blocks and NET traces are compiled into host-x86-64 stencil sequences
/// and executed directly, skipping the interpreter switch. The contract is
/// exact observational equivalence with the interpreter loop — identical
/// guest register/flag/memory effects, identical Cycles / Retired / Steps
/// accounting, identical trap attribution, watchdog behavior and exit
/// dispatch — verified by the differential harness in tests/.
///
/// Division of labor:
///  - compile() turns one immutable CacheBlock (block or trace) into a
///    position-independent code span published in a W^X ExecArena;
///  - jitted code executes only the block *body*: per-op guest state
///    updates plus per-op bookkeeping (PC, Cycles, Retired, Steps,
///    LastAppPC, the amortized watchdog probe, internal trace hops);
///  - every block *exit* fills the Frame with an exit descriptor and
///    returns to the dispatcher, which runs the very same post-loop and
///    exit-dispatch code (links, IBL, budgets) as the interpreter tier.
///
/// Opcodes whose semantics reach host services or need interpreter-exact
/// fault ordering (SYSCALL, TRAP, CAS, DIV — see jitStencil()) and all
/// tool hooks go through clean-call helpers that transliterate the
/// interpreter's dispatch cases one-to-one.
///
/// Teardown: a JitCode is owned by its CacheBlock, so flushRange / module
/// unload / epoch reclamation retire stencils exactly like translations —
/// the executable span is released when the block leaves the graveyard,
/// by which point no thread can be executing it. Jitted code is never
/// serialized: a StateFile restore starts cold and re-tiers lazily.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_DBI_JIT_H
#define JANITIZER_DBI_JIT_H

#include "vm/ExecArena.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace janitizer {

class Machine;
class GuestMemory;
class DbiEngine;
class DbiTool;
struct DbiCostModel;
struct RunBudget;
struct ThreadContext;
struct CacheBlock;
struct Violation;

namespace jit {

/// Why jitted code returned to the dispatcher. BlockEnd re-enters the
/// shared exit-dispatch path (links / IBL / fall-through); the others are
/// the loop's early returns, surfaced so the dispatcher can run the exact
/// interpreter-tier termination code.
enum class JitExit : uint32_t {
  BlockEnd = 0, ///< body done; NextPC/TransferKind describe the exit
  Exited,       ///< process exit (HLT, exit syscall, sentinel return)
  ThreadExit,   ///< only the calling guest thread is done
  Trapped,      ///< a trap aborted the run (TrapCode/TrapPC valid)
  Faulted,      ///< architectural fault or tripped watchdog
  Blocked,      ///< blocking syscall; re-issue at NextPC once runnable
  StepLimit,    ///< step budget hit inside a trace
  DoneStop,     ///< another thread published the terminal result
};

/// The per-invocation register/state frame shared between the dispatcher
/// and jitted code. Standard-layout on purpose: stencils address fields
/// by offsetof. The dispatcher initializes it, jitted code keeps Steps /
/// CurHead / LastAppPC / TraceTransitions current and fills the exit
/// descriptor before returning.
struct FrameRaw {
  Machine *M = nullptr;
  GuestMemory *Mem = nullptr;
  DbiEngine *E = nullptr;
  ThreadContext *TC = nullptr;
  const CacheBlock *Block = nullptr;
  /// &DbiEngine::Done (an atomic<bool>), polled by trace guards so an
  /// internally looping trace notices a sibling's terminal result.
  const void *DonePtr = nullptr;
  uint64_t Steps = 0;
  uint64_t MaxSteps = 0;
  uint64_t CurHead = 0;
  uint64_t LastAppPC = 0;
  uint64_t NextPC = 0;
  uint64_t TraceTransitions = 0;
  uint32_t ExitKind = 0;     ///< JitExit
  uint32_t TransferKind = 0; ///< CTIKind of the exiting transfer
  uint32_t TrapCode = 0;
  uint32_t HasFaultStr = 0; ///< 1: *FaultStr is the message, else FaultLit
  uint64_t TrapPC = 0;
  const char *FaultLit = nullptr;
  std::string *FaultStr = nullptr;
};

/// One compiled block: an executable span in the arena plus the storage
/// backing any messages the code references by absolute address.
struct JitCode {
  using EntryFn = void (*)(FrameRaw *);

  const void *Entry = nullptr;
  size_t CodeBytes = 0;
  ExecArena *Arena = nullptr;
  /// Message storage referenced by embedded pointers (stable addresses —
  /// the strings are heap-allocated before emission and never moved).
  std::vector<std::unique_ptr<std::string>> OwnedStrings;

  JitCode() = default;
  JitCode(const JitCode &) = delete;
  JitCode &operator=(const JitCode &) = delete;
  ~JitCode() {
    if (Arena && Entry)
      Arena->release(Entry);
  }

  void invoke(FrameRaw *F) const {
    reinterpret_cast<EntryFn>(const_cast<void *>(Entry))(F);
  }
};

/// Immutable inputs a compilation needs besides the block itself.
struct CompileEnv {
  ExecArena *Arena = nullptr;
  /// DbiCostModel::PerAppInstr, folded into each app op's cycle charge.
  uint64_t PerAppInstr = 0;
};

/// True when this process can run jitted stencils at all: host ISA is
/// x86-64 and the arena can map executable pages.
bool hostSupported();

/// Compiles \p Block into the arena. Returns null when the block uses a
/// shape the stencil set refuses (the caller falls back to the
/// interpreter tier permanently for this block). Thread-safe; the block's
/// Ops must be immutable (they are, once published).
std::unique_ptr<JitCode> compile(const CacheBlock &Block,
                                 const CompileEnv &Env);

/// Friend bridge into DbiEngine private state for the clean-call helpers
/// (tool callbacks, cost model, watchdog budgets, violation records).
struct JitSupport {
  static DbiTool &tool(DbiEngine &E);
  static const DbiCostModel &costs(const DbiEngine &E);
  static const RunBudget &budget(const DbiEngine &E);
  static bool wallDeadlinePassed(const DbiEngine &E);
  /// Reads the last recorded violation under the engine's lock; leaves
  /// Code/PC untouched when none was recorded.
  static bool lastViolation(DbiEngine &E, uint8_t &Code, uint64_t &PC);
};

} // namespace jit
} // namespace janitizer

#endif // JANITIZER_DBI_JIT_H
