//===- dbi/Jit.cpp - Template-JIT stencil compiler and runtime -------------===//
///
/// \file
/// Lowers one immutable CacheBlock into host-x86-64 code. The lowering is
/// a transliteration of DbiEngine::runThread's per-op loop: every stencil
/// performs exactly the guest-state updates and bookkeeping the
/// interpreter performs for that op, in the same order, and every way the
/// loop can stop maps to a JitExit descriptor so the dispatcher resumes
/// in the shared post-loop code. Anything that cannot be proven
/// equivalent statically is refused (the block then stays on the
/// interpreter tier) or routed through a clean-call helper below that
/// *is* the interpreter case, verbatim.
///
/// Register convention inside jitted code (all callee-saved, so helper
/// calls need no spills):
///   r14 = FrameRaw*      r15 = Machine*      r13 = GuestMemory*
///   rbx = indirect-target latch
/// rax/rcx/rdx/rsi/rdi are scratch. Guest flags live as bool bytes in the
/// Machine, so host flags carry no state between guest instructions.
///
//===----------------------------------------------------------------------===//

#include "dbi/Jit.h"

#include "dbi/Dbi.h"
#include "jasm/X64Emitter.h"
#include "support/Format.h"
#include "vm/Machine.h"
#include "vm/Syscalls.h"

#include <chrono>
#include <cstddef>
#include <cstring>

using namespace janitizer;
using namespace janitizer::x64;

namespace {

//===----------------------------------------------------------------------===//
// Machine field offsets
//===----------------------------------------------------------------------===//

/// Byte offsets of the Machine fields stencils address directly. Machine
/// is not standard-layout (virtual base, reference member), so the
/// offsets are measured once from a scratch instance instead of
/// offsetof; they are identical for every instance of the class.
struct MachineLayout {
  int32_t Reg0 = 0;
  int32_t ZF = 0, SF = 0, CF = 0, OF = 0;
  int32_t PC = 0, Cycles = 0, Retired = 0;

  int32_t reg(unsigned R) const {
    return Reg0 + static_cast<int32_t>(8 * R);
  }
  int32_t reg(Reg R) const { return reg(static_cast<unsigned>(R)); }

  static const MachineLayout &get() {
    static const MachineLayout L = [] {
      Machine Scratch;
      const char *Base = reinterpret_cast<const char *>(&Scratch);
      auto Off = [&](const void *Field) {
        return static_cast<int32_t>(reinterpret_cast<const char *>(Field) -
                                    Base);
      };
      MachineLayout ML;
      ML.Reg0 = Off(&Scratch.R[0]);
      ML.ZF = Off(&Scratch.ZF);
      ML.SF = Off(&Scratch.SF);
      ML.CF = Off(&Scratch.CF);
      ML.OF = Off(&Scratch.OF);
      ML.PC = Off(&Scratch.PC);
      ML.Cycles = Off(&Scratch.Cycles);
      ML.Retired = Off(&Scratch.Retired);
      return ML;
    }();
    return L;
  }
};

constexpr int32_t frameOff(size_t O) { return static_cast<int32_t>(O); }
#define JZ_FOFF(Field) frameOff(offsetof(jit::FrameRaw, Field))

//===----------------------------------------------------------------------===//
// Clean-call helpers
//===----------------------------------------------------------------------===//
// Return protocol (32-bit): 0 = continue with the next op, 1 = the frame
// holds an exit descriptor (jump to the epilogue), 2 = meta branch taken
// (jump to the op's SkipToIdx label), 3 = app fall-through (run the
// trace cut-boundary glue, if the op has any, then continue).

constexpr uint32_t HelperContinue = 0;
constexpr uint32_t HelperExit = 1;
constexpr uint32_t HelperMetaTaken = 2;
constexpr uint32_t HelperFallthrough = 3;

uint64_t jzRead8(GuestMemory *Mem, uint64_t A) { return Mem->read8(A); }
uint64_t jzRead16(GuestMemory *Mem, uint64_t A) { return Mem->read16(A); }
uint64_t jzRead32(GuestMemory *Mem, uint64_t A) { return Mem->read32(A); }
uint64_t jzRead64(GuestMemory *Mem, uint64_t A) { return Mem->read64(A); }
void jzWrite8(GuestMemory *Mem, uint64_t A, uint64_t V) {
  Mem->write8(A, static_cast<uint8_t>(V));
}
void jzWrite16(GuestMemory *Mem, uint64_t A, uint64_t V) {
  Mem->write16(A, static_cast<uint16_t>(V));
}
void jzWrite32(GuestMemory *Mem, uint64_t A, uint64_t V) {
  Mem->write32(A, static_cast<uint32_t>(V));
}
void jzWrite64(GuestMemory *Mem, uint64_t A, uint64_t V) {
  Mem->write64(A, V);
}

/// The interpreter's watchdog check, amortized to every 1024th step by
/// the caller. Returns nonzero after filling a Faulted exit descriptor.
uint32_t jzWatchdog(jit::FrameRaw *F) {
  DbiEngine &E = *F->E;
  const RunBudget &B = jit::JitSupport::budget(E);
  if (!B.MaxCycles && !B.MaxWallMs)
    return 0;
  Machine &M = *F->M;
  if (B.MaxCycles && M.Cycles > B.MaxCycles) {
    *F->FaultStr = formatString(
        "watchdog: cycle budget %llu exceeded (tid=%u pc=0x%llx cycles=%llu)",
        static_cast<unsigned long long>(B.MaxCycles), M.Tid,
        static_cast<unsigned long long>(M.PC),
        static_cast<unsigned long long>(M.Cycles));
    F->HasFaultStr = 1;
    F->ExitKind = static_cast<uint32_t>(jit::JitExit::Faulted);
    return 1;
  }
  if (B.MaxWallMs && jit::JitSupport::wallDeadlinePassed(E)) {
    *F->FaultStr = formatString(
        "watchdog: wall-clock budget %llu ms exceeded (tid=%u pc=0x%llx "
        "steps=%llu)",
        static_cast<unsigned long long>(B.MaxWallMs), M.Tid,
        static_cast<unsigned long long>(M.PC),
        static_cast<unsigned long long>(F->Steps));
    F->HasFaultStr = 1;
    F->ExitKind = static_cast<uint32_t>(jit::JitExit::Faulted);
    return 1;
  }
  return 0;
}

/// Executes one *app* op through the interpreter core. Used for the
/// Helper-classified opcodes (SYSCALL / TRAP / CAS / DIV) whose dispatch
/// involves host services or fault-before-result ordering.
uint32_t jzAppOp(jit::FrameRaw *F, uint32_t OpIdx) {
  Machine &M = *F->M;
  DbiEngine &E = *F->E;
  const CacheOp &Op = F->Block->Ops[OpIdx];

  M.PC = Op.OrigAddr;
  uint64_t PerApp = jit::JitSupport::costs(E).PerAppInstr;
  if (PerApp)
    M.addCycles(PerApp);
  ExecResult R = M.execute(Op.I, Op.OrigAddr);
  ++F->Steps;
  F->LastAppPC = Op.OrigAddr;
  if ((F->Steps & 1023) == 0 && jzWatchdog(F))
    return HelperExit;

  switch (R.K) {
  case ExecResult::Kind::Fallthrough:
    return HelperFallthrough;
  case ExecResult::Kind::Trap: {
    HookAction A = jit::JitSupport::tool(E).onTrap(E, R.TrapCode, Op.OrigAddr);
    if (A == HookAction::Abort) {
      F->TrapCode = R.TrapCode;
      F->TrapPC = Op.OrigAddr;
      F->ExitKind = static_cast<uint32_t>(jit::JitExit::Trapped);
      return HelperExit;
    }
    return HelperContinue; // trap-continue: plain ++OpIdx, no glue
  }
  case ExecResult::Kind::Exited:
    F->ExitKind = static_cast<uint32_t>(R.Target == layout::ThreadExitSentinel
                                            ? jit::JitExit::ThreadExit
                                            : jit::JitExit::Exited);
    return HelperExit;
  case ExecResult::Kind::Blocked:
    F->NextPC = Op.OrigAddr; // re-issue this PC once runnable
    F->TransferKind = static_cast<uint32_t>(CTIKind::None);
    F->ExitKind = static_cast<uint32_t>(jit::JitExit::Blocked);
    return HelperExit;
  case ExecResult::Kind::Fault:
    F->FaultLit = R.FaultMsg ? R.FaultMsg : "fault";
    F->HasFaultStr = 0;
    F->ExitKind = static_cast<uint32_t>(jit::JitExit::Faulted);
    return HelperExit;
  default:
    // Branch/Call/Return cannot come from a Helper-classified opcode;
    // surface it as a block-end exit rather than corrupting state.
    F->NextPC = R.Target;
    F->TransferKind = static_cast<uint32_t>(ctiKind(Op.I.Op));
    F->ExitKind = static_cast<uint32_t>(jit::JitExit::BlockEnd);
    return HelperExit;
  }
}

/// Executes one *meta* op through the interpreter core (the Meta case of
/// runThread, verbatim): used for meta instructions outside the inline
/// stencil set.
uint32_t jzMetaOp(jit::FrameRaw *F, uint32_t OpIdx) {
  Machine &M = *F->M;
  DbiEngine &E = *F->E;
  const CacheBlock &B = *F->Block;
  const CacheOp &Op = B.Ops[OpIdx];

  ExecResult R = M.execute(Op.I, 0);
  switch (R.K) {
  case ExecResult::Kind::Fallthrough:
    return HelperContinue;
  case ExecResult::Kind::Branch:
    if (Op.SkipToIdx == ~0u) {
      F->FaultLit = "unbound meta branch";
      F->HasFaultStr = 0;
      F->ExitKind = static_cast<uint32_t>(jit::JitExit::Faulted);
      return HelperExit;
    }
    return HelperMetaTaken;
  case ExecResult::Kind::Trap: {
    // Attribute the trap to the next application instruction (the one
    // the meta sequence guards), like the interpreter.
    uint64_t TrapPC = 0;
    for (size_t NI = OpIdx + 1; NI < B.Ops.size(); ++NI)
      if (B.Ops[NI].K == CacheOp::Kind::App) {
        TrapPC = B.Ops[NI].OrigAddr;
        break;
      }
    if (!TrapPC)
      TrapPC = F->LastAppPC ? F->LastAppPC : F->CurHead;
    HookAction A = jit::JitSupport::tool(E).onTrap(E, R.TrapCode, TrapPC);
    if (A == HookAction::Abort) {
      F->TrapCode = R.TrapCode;
      F->TrapPC = TrapPC;
      F->ExitKind = static_cast<uint32_t>(jit::JitExit::Trapped);
      return HelperExit;
    }
    return HelperContinue;
  }
  case ExecResult::Kind::Fault:
    F->FaultLit = R.FaultMsg ? R.FaultMsg : "meta fault";
    F->HasFaultStr = 0;
    F->ExitKind = static_cast<uint32_t>(jit::JitExit::Faulted);
    return HelperExit;
  default:
    F->FaultLit = "meta instruction attempted control transfer";
    F->HasFaultStr = 0;
    F->ExitKind = static_cast<uint32_t>(jit::JitExit::Faulted);
    return HelperExit;
  }
}

/// Runs one Hook op: cycle charge, clean-call accounting, tool dispatch.
uint32_t jzHook(jit::FrameRaw *F, uint32_t OpIdx) {
  Machine &M = *F->M;
  DbiEngine &E = *F->E;
  const CacheOp &Op = F->Block->Ops[OpIdx];

  if (Op.InlineHook) {
    M.addCycles(Op.HookCost);
  } else {
    M.addCycles(jit::JitSupport::costs(E).CleanCallBase + Op.HookCost);
    ++F->TC->Stats.CleanCalls;
  }
  HookAction A = jit::JitSupport::tool(E).onHook(E, Op);
  if (A == HookAction::Abort) {
    uint8_t Code = 0;
    uint64_t PC = F->CurHead;
    jit::JitSupport::lastViolation(E, Code, PC);
    F->TrapCode = Code;
    F->TrapPC = PC;
    F->ExitKind = static_cast<uint32_t>(jit::JitExit::Trapped);
    return HelperExit;
  }
  if (A == HookAction::SkipBlockRest) {
    // Abandon the rest of the block: NextPC keeps its frame-initialized
    // FallthroughTarget value, TransferKind stays None — exactly the
    // interpreter's BlockDone path.
    F->ExitKind = static_cast<uint32_t>(jit::JitExit::BlockEnd);
    return HelperExit;
  }
  return HelperContinue;
}

//===----------------------------------------------------------------------===//
// Stencil compiler
//===----------------------------------------------------------------------===//

/// Extra cycle charge beyond cost::Base for an inline-stencil opcode
/// (mirrors the charges Machine::execute makes for these ops).
uint64_t extraCycles(Opcode Op) {
  switch (Op) {
  case Opcode::LD1:
  case Opcode::LD2:
  case Opcode::LD4:
  case Opcode::LD8:
  case Opcode::ST1:
  case Opcode::ST2:
  case Opcode::ST4:
  case Opcode::ST8:
  case Opcode::PUSHF:
  case Opcode::POPF:
  case Opcode::PUSH:
  case Opcode::POP:
  case Opcode::PUSHI64:
  case Opcode::CALL:
  case Opcode::CALLR:
  case Opcode::RET:
  case Opcode::JMPM:
    return cost::MemAccess;
  case Opcode::CALLM:
    return 2 * cost::MemAccess;
  case Opcode::MUL:
  case Opcode::MULI:
    return cost::MulDiv;
  default:
    return 0;
  }
}

/// True when a meta op can be emitted inline (no helper round trip).
/// Anything that can exit, fault with host plumbing, or transfer control
/// out of the block goes through jzMetaOp instead.
bool metaInlineable(const CacheOp &Op) {
  switch (Op.I.Op) {
  case Opcode::NOP:
  case Opcode::MOV_RR:
  case Opcode::MOV_RI64:
  case Opcode::MOV_RI32:
  case Opcode::LEA:
  case Opcode::LD1:
  case Opcode::LD2:
  case Opcode::LD4:
  case Opcode::LD8:
  case Opcode::ST1:
  case Opcode::ST2:
  case Opcode::ST4:
  case Opcode::ST8:
  case Opcode::PUSHF:
  case Opcode::POPF:
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::MUL:
  case Opcode::CMP:
  case Opcode::TEST:
  case Opcode::ADDI:
  case Opcode::SUBI:
  case Opcode::ANDI:
  case Opcode::ORI:
  case Opcode::XORI:
  case Opcode::SHLI:
  case Opcode::SHRI:
  case Opcode::MULI:
  case Opcode::CMPI:
  case Opcode::TESTI:
  case Opcode::PUSH:
  case Opcode::POP:
  case Opcode::PUSHI64:
  case Opcode::JMP:
  case Opcode::JE:
  case Opcode::JNE:
  case Opcode::JL:
  case Opcode::JLE:
  case Opcode::JG:
  case Opcode::JGE:
  case Opcode::JB:
  case Opcode::JAE:
    return true;
  default:
    return false;
  }
}

class Compiler {
public:
  Compiler(const CacheBlock &B, const jit::CompileEnv &Env, jit::JitCode &JC)
      : B(B), Env(Env), JC(JC), ML(MachineLayout::get()) {}

  bool run();

  X64Emitter E;

private:
  const CacheBlock &B;
  const jit::CompileEnv &Env;
  jit::JitCode &JC;
  const MachineLayout &ML;

  /// Code offset of each op (plus one end label at Ops.size()).
  std::vector<size_t> Labels;
  /// rel32 fixups to op labels / the epilogue / the shared stubs.
  std::vector<std::pair<size_t, uint32_t>> IdxFix;
  std::vector<size_t> EpiFix, DoneFix, StepFix, UnboundFix;

  bool precheck() const;
  uint64_t staticEndNext() const;

  // -- emission primitives -------------------------------------------------
  template <typename Fn> void callFn(Fn *F2) {
    E.movRI(RAX, reinterpret_cast<uint64_t>(
                     reinterpret_cast<void *>(F2)));
    E.callR(RAX);
  }
  void callOpHelper(uint32_t (*Fn)(jit::FrameRaw *, uint32_t), uint32_t I) {
    E.movRR(RDI, R14);
    E.movRI(RSI, I);
    callFn(Fn);
  }
  void emitPrologue();
  void emitGuard();
  void emitEA(const MemOperand &Mm, uint64_t OrigPC, unsigned Size);
  void emitPush64FromRax();
  void emitAluOp(Opcode Eff, Reg Rd, bool HasImm, int64_t Imm, Reg Rs,
                 bool Writeback);
  void emitShift(Reg Rd, bool Right, bool HasImm, int64_t Imm, Reg Rs);
  void emitMul(Reg Rd, bool HasImm, int64_t Imm, Reg Rs);
  void emitBody(const Instruction &I, uint64_t OrigPC);
  /// jcc on the *guest* condition; returns the fixup. Negate flips the
  /// sense (used to lay the taken path out inline).
  size_t emitCondJcc(Opcode Cc, bool Negate);
  void emitTransitionStores(uint64_t Head);
  void emitExitStatic(uint64_t NextPC, CTIKind K);
  void emitExitDynRbx(CTIKind K);
  void emitFaultLit(const char *Msg);
  void emitTakenTransfer(uint64_t T, CTIKind K);
  void emitCutBoundary(uint32_t I, bool Conditional);
  void emitAppPre(const CacheOp &Op);
  void emitPostApp(uint64_t OrigAddr);
  void emitApp(uint32_t I);
  void emitMeta(uint32_t I);
  void emitHook(uint32_t I);
  void emitEnd();
  void emitStubsAndPatch();
};

bool Compiler::precheck() const {
  if (!Env.Arena || B.Ops.empty() || B.AppInstrs == 0)
    return false;
  // movMI32sx embeds guest addresses as sign-extended imm32.
  auto Addressable = [](uint64_t A) { return A < (1ull << 31); };
  if (!Addressable(B.AppStart) || !Addressable(B.FallthroughTarget))
    return false;
  // The aggregated per-op cycle charge must fit an imm32.
  if (Env.PerAppInstr > (1u << 20))
    return false;
  for (uint32_t I = 0; I < B.Ops.size(); ++I) {
    const CacheOp &Op = B.Ops[I];
    if (Op.K == CacheOp::Kind::App) {
      if (!Addressable(Op.OrigAddr) ||
          !Addressable(Op.OrigAddr + Op.I.Size))
        return false;
      CTIKind K = ctiKind(Op.I.Op);
      if (K == CTIKind::DirectJump || K == CTIKind::CondJump ||
          K == CTIKind::DirectCall)
        if (!Addressable(Op.I.branchTarget(Op.OrigAddr)))
          return false;
    } else if (Op.K == CacheOp::Kind::Meta && Op.SkipToIdx != ~0u) {
      // Static control flow only: meta branches must go strictly forward
      // and may not skip an application instruction, or the end-of-block
      // implicit-next analysis breaks.
      if (Op.SkipToIdx > B.Ops.size() || Op.SkipToIdx <= I)
        return false;
      for (uint32_t J = I + 1; J < Op.SkipToIdx; ++J)
        if (B.Ops[J].K == CacheOp::Kind::App)
          return false;
    }
  }
  return true;
}

/// The value the interpreter's ImplicitNext holds when the op loop runs
/// off the end: app ops execute in order and only a Fallthrough result
/// updates it, so it is the fall address of the last app op that can
/// fall through (TRAP never does). Zero means "fell off" (fault).
uint64_t Compiler::staticEndNext() const {
  if (B.FallthroughTarget)
    return B.FallthroughTarget;
  uint64_t Last = 0;
  for (const CacheOp &Op : B.Ops)
    if (Op.K == CacheOp::Kind::App && Op.I.Op != Opcode::TRAP)
      Last = Op.OrigAddr + Op.I.Size;
  return Last;
}

void Compiler::emitPrologue() {
  E.push(RBX);
  E.push(RBP);
  E.push(R12);
  E.push(R13);
  E.push(R14);
  E.push(R15);
  E.aluRI(Alu::Sub, RSP, 8); // entry rsp ≡ 8 (mod 16); align for calls
  E.movRR(R14, RDI);
  E.movRM(R15, R14, JZ_FOFF(M));
  E.movRM(R13, R14, JZ_FOFF(Mem));
}

/// The trace loop condition, checked before every op like the
/// interpreter's `Steps < MaxSteps && !Done`: Done first (its precedence
/// in the post-loop), then the step budget.
void Compiler::emitGuard() {
  E.movRM(RAX, R14, JZ_FOFF(DonePtr));
  E.cmpDeref8I(RAX, 0);
  DoneFix.push_back(E.jcc(Cond::NE));
  E.movRM(RAX, R14, JZ_FOFF(Steps));
  E.aluRM(Alu::Cmp, RAX, R14, JZ_FOFF(MaxSteps));
  StepFix.push_back(E.jcc(Cond::AE));
}

/// Effective address into rsi (clobbers rcx). Matches
/// Machine::effectiveAddr: disp + base + (index << scale) + pc-rel.
void Compiler::emitEA(const MemOperand &Mm, uint64_t OrigPC, unsigned Size) {
  uint64_t C = static_cast<uint64_t>(static_cast<int64_t>(Mm.Disp)) +
               (Mm.PCRel ? OrigPC + Size : 0);
  E.movRI(RSI, C);
  if (Mm.HasBase)
    E.aluRM(Alu::Add, RSI, R15, ML.reg(Mm.Base));
  if (Mm.HasIndex) {
    E.movRM(RCX, R15, ML.reg(Mm.Index));
    if (Mm.ScaleLog2)
      E.shiftRI(RCX, Mm.ScaleLog2 & 63, false);
    E.aluRR(Alu::Add, RSI, RCX);
  }
}

/// push64(rax): SP -= 8, then write64(SP, rax).
void Compiler::emitPush64FromRax() {
  E.movRM(RCX, R15, ML.reg(Reg::SP));
  E.aluRI(Alu::Sub, RCX, 8);
  E.movMR(R15, ML.reg(Reg::SP), RCX);
  E.movRR(RDI, R13);
  E.movRR(RSI, RCX);
  E.movRR(RDX, RAX);
  callFn(jzWrite64);
}

void Compiler::emitAluOp(Opcode Eff, Reg Rd, bool HasImm, int64_t Imm,
                         Reg Rs, bool Writeback) {
  E.movRM(RAX, R15, ML.reg(Rd));
  bool Arith = Eff == Opcode::ADD || Eff == Opcode::SUB || Eff == Opcode::CMP;
  if (Eff == Opcode::TEST) {
    if (HasImm)
      E.movRI(RCX, static_cast<uint64_t>(Imm));
    else
      E.movRM(RCX, R15, ML.reg(Rs));
    E.testRR(RAX, RCX);
  } else {
    Alu A;
    switch (Eff) {
    case Opcode::ADD: A = Alu::Add; break;
    case Opcode::SUB: A = Alu::Sub; break;
    case Opcode::AND: A = Alu::And; break;
    case Opcode::OR: A = Alu::Or; break;
    case Opcode::XOR: A = Alu::Xor; break;
    default: A = Alu::Cmp; break; // CMP
    }
    if (HasImm && X64Emitter::fitsInt32(Imm)) {
      E.aluRI(A, RAX, static_cast<int32_t>(Imm));
    } else if (HasImm) {
      E.movRI(RCX, static_cast<uint64_t>(Imm));
      E.aluRR(A, RAX, RCX);
    } else {
      E.aluRM(A, RAX, R15, ML.reg(Rs));
    }
  }
  E.setccM(Cond::E, R15, ML.ZF);
  E.setccM(Cond::S, R15, ML.SF);
  if (Arith) {
    E.setccM(Cond::C, R15, ML.CF);
    E.setccM(Cond::O, R15, ML.OF);
  } else {
    E.movMI8(R15, ML.CF, 0);
    E.movMI8(R15, ML.OF, 0);
  }
  if (Writeback)
    E.movMR(R15, ML.reg(Rd), RAX);
}

/// Guest SHL/SHR: count masked to 6 bits; count==0 leaves the value and
/// CF untouched but still recomputes ZF/SF from the (unchanged) value;
/// OF is always cleared. Host OF is undefined for counts > 1 and host
/// ZF/SF are what we recompute anyway, so CF is captured immediately
/// after the shift and everything else derives from `test`.
void Compiler::emitShift(Reg Rd, bool Right, bool HasImm, int64_t Imm,
                         Reg Rs) {
  E.movRM(RAX, R15, ML.reg(Rd));
  if (HasImm) {
    unsigned K = static_cast<uint64_t>(Imm) & 63;
    if (K) {
      E.shiftRI(RAX, K, Right);
      E.setccM(Cond::C, R15, ML.CF);
    }
  } else {
    E.movRM(RCX, R15, ML.reg(Rs));
    E.aluRI(Alu::And, RCX, 63);
    size_t Zero = E.jcc(Cond::E);
    E.shiftRCl(RAX, Right);
    E.setccM(Cond::C, R15, ML.CF);
    E.patchHere(Zero);
  }
  E.testRR(RAX, RAX);
  E.setccM(Cond::E, R15, ML.ZF);
  E.setccM(Cond::S, R15, ML.SF);
  E.movMI8(R15, ML.OF, 0);
  E.movMR(R15, ML.reg(Rd), RAX);
}

/// Guest MUL: 64x64 widening; CF=OF = high half nonzero; ZF/SF from the
/// low half. Host ZF/SF are undefined after mul, so CF/OF are captured
/// first, then ZF/SF recomputed via `test`.
void Compiler::emitMul(Reg Rd, bool HasImm, int64_t Imm, Reg Rs) {
  E.movRM(RAX, R15, ML.reg(Rd));
  if (HasImm)
    E.movRI(RCX, static_cast<uint64_t>(Imm));
  else
    E.movRM(RCX, R15, ML.reg(Rs));
  E.mulR(RCX);
  E.setccM(Cond::C, R15, ML.CF);
  E.setccM(Cond::O, R15, ML.OF);
  E.testRR(RAX, RAX);
  E.setccM(Cond::E, R15, ML.ZF);
  E.setccM(Cond::S, R15, ML.SF);
  E.movMR(R15, ML.reg(Rd), RAX);
}

/// Guest-state effects of a non-CTI instruction (flags, registers,
/// memory). CTIs and the Helper-classified ops never reach here.
void Compiler::emitBody(const Instruction &I, uint64_t OrigPC) {
  switch (I.Op) {
  case Opcode::NOP:
    break;
  case Opcode::MOV_RR:
    E.movRM(RAX, R15, ML.reg(I.Rs));
    E.movMR(R15, ML.reg(I.Rd), RAX);
    break;
  case Opcode::MOV_RI64:
  case Opcode::MOV_RI32:
    if (X64Emitter::fitsInt32(I.Imm)) {
      E.movMI32sx(R15, ML.reg(I.Rd), static_cast<int32_t>(I.Imm));
    } else {
      E.movRI(RAX, static_cast<uint64_t>(I.Imm));
      E.movMR(R15, ML.reg(I.Rd), RAX);
    }
    break;
  case Opcode::LEA:
    emitEA(I.Mem, OrigPC, I.Size);
    E.movMR(R15, ML.reg(I.Rd), RSI);
    break;
  case Opcode::LD1:
  case Opcode::LD2:
  case Opcode::LD4:
  case Opcode::LD8: {
    emitEA(I.Mem, OrigPC, I.Size);
    E.movRR(RDI, R13);
    switch (I.Op) {
    case Opcode::LD1: callFn(jzRead8); break;
    case Opcode::LD2: callFn(jzRead16); break;
    case Opcode::LD4: callFn(jzRead32); break;
    default: callFn(jzRead64); break;
    }
    E.movMR(R15, ML.reg(I.Rd), RAX);
    break;
  }
  case Opcode::ST1:
  case Opcode::ST2:
  case Opcode::ST4:
  case Opcode::ST8: {
    emitEA(I.Mem, OrigPC, I.Size);
    E.movRM(RDX, R15, ML.reg(I.Rd));
    E.movRR(RDI, R13);
    switch (I.Op) {
    case Opcode::ST1: callFn(jzWrite8); break;
    case Opcode::ST2: callFn(jzWrite16); break;
    case Opcode::ST4: callFn(jzWrite32); break;
    default: callFn(jzWrite64); break;
    }
    break;
  }
  case Opcode::PUSHF:
    // pack ZF | SF<<1 | CF<<2 | OF<<3, then push.
    E.movzx8RM(RAX, R15, ML.ZF);
    E.movzx8RM(RCX, R15, ML.SF);
    E.leaRRscale(RAX, RAX, RCX, 1);
    E.movzx8RM(RCX, R15, ML.CF);
    E.leaRRscale(RAX, RAX, RCX, 2);
    E.movzx8RM(RCX, R15, ML.OF);
    E.shiftRI(RCX, 3, false);
    E.aluRR(Alu::Or, RAX, RCX);
    emitPush64FromRax();
    break;
  case Opcode::POPF: {
    E.movRM(RSI, R15, ML.reg(Reg::SP));
    E.movRR(RDI, R13);
    callFn(jzRead64);
    E.aluMI(Alu::Add, R15, ML.reg(Reg::SP), 8);
    const int32_t FlagOff[4] = {ML.ZF, ML.SF, ML.CF, ML.OF};
    for (unsigned Bit = 0; Bit < 4; ++Bit) {
      E.movRR(RCX, RAX);
      if (Bit)
        E.shiftRI(RCX, Bit, true);
      E.aluRI(Alu::And, RCX, 1);
      E.movM8R(R15, FlagOff[Bit], RCX);
    }
    break;
  }
  case Opcode::PUSH:
    E.movRM(RAX, R15, ML.reg(I.Rd)); // value read before SP moves
    emitPush64FromRax();
    break;
  case Opcode::PUSHI64:
    E.movRI(RAX, static_cast<uint64_t>(I.Imm));
    emitPush64FromRax();
    break;
  case Opcode::POP:
    E.movRM(RSI, R15, ML.reg(Reg::SP));
    E.movRR(RDI, R13);
    callFn(jzRead64);
    E.aluMI(Alu::Add, R15, ML.reg(Reg::SP), 8);
    E.movMR(R15, ML.reg(I.Rd), RAX); // after SP+=8: POP SP yields the value
    break;
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
    emitAluOp(I.Op, I.Rd, false, 0, I.Rs, true);
    break;
  case Opcode::CMP:
    emitAluOp(Opcode::CMP, I.Rd, false, 0, I.Rs, false);
    break;
  case Opcode::TEST:
    emitAluOp(Opcode::TEST, I.Rd, false, 0, I.Rs, false);
    break;
  case Opcode::ADDI:
    emitAluOp(Opcode::ADD, I.Rd, true, I.Imm, I.Rs, true);
    break;
  case Opcode::SUBI:
    emitAluOp(Opcode::SUB, I.Rd, true, I.Imm, I.Rs, true);
    break;
  case Opcode::ANDI:
    emitAluOp(Opcode::AND, I.Rd, true, I.Imm, I.Rs, true);
    break;
  case Opcode::ORI:
    emitAluOp(Opcode::OR, I.Rd, true, I.Imm, I.Rs, true);
    break;
  case Opcode::XORI:
    emitAluOp(Opcode::XOR, I.Rd, true, I.Imm, I.Rs, true);
    break;
  case Opcode::CMPI:
    emitAluOp(Opcode::CMP, I.Rd, true, I.Imm, I.Rs, false);
    break;
  case Opcode::TESTI:
    emitAluOp(Opcode::TEST, I.Rd, true, I.Imm, I.Rs, false);
    break;
  case Opcode::SHL:
    emitShift(I.Rd, false, false, 0, I.Rs);
    break;
  case Opcode::SHR:
    emitShift(I.Rd, true, false, 0, I.Rs);
    break;
  case Opcode::SHLI:
    emitShift(I.Rd, false, true, I.Imm, I.Rs);
    break;
  case Opcode::SHRI:
    emitShift(I.Rd, true, true, I.Imm, I.Rs);
    break;
  case Opcode::MUL:
    emitMul(I.Rd, false, 0, I.Rs);
    break;
  case Opcode::MULI:
    emitMul(I.Rd, true, I.Imm, I.Rs);
    break;
  default:
    break; // unreachable by construction (precheck + classification)
  }
}

size_t Compiler::emitCondJcc(Opcode Cc, bool Negate) {
  auto Pick = [&](Cond Taken, Cond NotTaken) {
    return E.jcc(Negate ? NotTaken : Taken);
  };
  switch (Cc) {
  case Opcode::JE:
    E.cmpM8I(R15, ML.ZF, 0);
    return Pick(Cond::NE, Cond::E);
  case Opcode::JNE:
    E.cmpM8I(R15, ML.ZF, 0);
    return Pick(Cond::E, Cond::NE);
  case Opcode::JB:
    E.cmpM8I(R15, ML.CF, 0);
    return Pick(Cond::NE, Cond::E);
  case Opcode::JAE:
    E.cmpM8I(R15, ML.CF, 0);
    return Pick(Cond::E, Cond::NE);
  case Opcode::JL: // SF != OF
    E.movzx8RM(RAX, R15, ML.SF);
    E.movzx8RM(RCX, R15, ML.OF);
    E.aluRR(Alu::Cmp, RAX, RCX);
    return Pick(Cond::NE, Cond::E);
  case Opcode::JGE: // SF == OF
    E.movzx8RM(RAX, R15, ML.SF);
    E.movzx8RM(RCX, R15, ML.OF);
    E.aluRR(Alu::Cmp, RAX, RCX);
    return Pick(Cond::E, Cond::NE);
  case Opcode::JLE: // ZF || SF != OF  <=>  (SF^OF) | ZF != 0
  case Opcode::JG:  // !ZF && SF == OF <=>  (SF^OF) | ZF == 0
    E.movzx8RM(RAX, R15, ML.SF);
    E.movzx8RM(RCX, R15, ML.OF);
    E.aluRR(Alu::Xor, RAX, RCX);
    E.movzx8RM(RCX, R15, ML.ZF);
    E.aluRR(Alu::Or, RAX, RCX);
    return Cc == Opcode::JLE ? Pick(Cond::NE, Cond::E)
                             : Pick(Cond::E, Cond::NE);
  default:
    // Unreachable; emit an always-false branch to stay well-formed.
    E.testRR(RAX, RAX);
    return E.jcc(Cond::O);
  }
}

void Compiler::emitTransitionStores(uint64_t Head) {
  E.movMI32sx(R14, JZ_FOFF(CurHead), static_cast<int32_t>(Head));
  E.incM(R14, JZ_FOFF(TraceTransitions));
}

void Compiler::emitExitStatic(uint64_t NextPC, CTIKind K) {
  E.movMI32sx(R14, JZ_FOFF(NextPC), static_cast<int32_t>(NextPC));
  E.movMI32(R14, JZ_FOFF(TransferKind), static_cast<uint32_t>(K));
  E.movMI32(R14, JZ_FOFF(ExitKind),
            static_cast<uint32_t>(jit::JitExit::BlockEnd));
  EpiFix.push_back(E.jmp());
}

void Compiler::emitExitDynRbx(CTIKind K) {
  E.movMR(R14, JZ_FOFF(NextPC), RBX);
  E.movMI32(R14, JZ_FOFF(TransferKind), static_cast<uint32_t>(K));
  E.movMI32(R14, JZ_FOFF(ExitKind),
            static_cast<uint32_t>(jit::JitExit::BlockEnd));
  EpiFix.push_back(E.jmp());
}

void Compiler::emitFaultLit(const char *Msg) {
  E.movRI(RAX, reinterpret_cast<uint64_t>(Msg));
  E.movMR(R14, JZ_FOFF(FaultLit), RAX);
  E.movMI32(R14, JZ_FOFF(HasFaultStr), 0);
  E.movMI32(R14, JZ_FOFF(ExitKind),
            static_cast<uint32_t>(jit::JitExit::Faulted));
  EpiFix.push_back(E.jmp());
}

/// A resolved direct transfer to \p T: inside a trace, a transfer to a
/// constituent head is an internal hop (CurHead/TraceTransitions update,
/// jump to its ops); anything else exits with a BlockEnd descriptor so
/// the dispatcher's link/IBL code runs.
void Compiler::emitTakenTransfer(uint64_t T, CTIKind K) {
  if (B.IsTrace &&
      (K == CTIKind::DirectJump || K == CTIKind::CondJump ||
       K == CTIKind::DirectCall)) {
    if (const uint32_t *Idx = B.traceEntryFor(T)) {
      emitTransitionStores(T);
      IdxFix.push_back({E.jmp(), *Idx});
      return;
    }
  }
  emitExitStatic(T, K);
}

/// Fall-through boundary glue for a non-terminator op inside a trace:
/// when the next op starts a different constituent, the interpreter
/// either records an internal transition (heads match) or exits. When
/// \p Conditional the glue only runs if the preceding helper returned
/// HelperFallthrough (eax == 3); trap-continue (eax == 0) skips it.
void Compiler::emitCutBoundary(uint32_t I, bool Conditional) {
  if (!B.IsTrace)
    return;
  const uint64_t *Head = B.traceHeadAtOp(I + 1);
  if (!Head)
    return;
  const CacheOp &Op = B.Ops[I];
  uint64_t Fall = Op.OrigAddr + Op.I.Size;
  size_t Skip = 0;
  if (Conditional) {
    E.aluRI32(Alu::Cmp, RAX, static_cast<int32_t>(HelperFallthrough));
    Skip = E.jcc(Cond::NE);
  }
  if (*Head == Fall)
    emitTransitionStores(Fall); // falls into the next op's guard
  else
    emitExitStatic(Fall, CTIKind::None);
  if (Conditional)
    E.patchHere(Skip);
}

/// Pre-execute bookkeeping for an inline app op: PC, the aggregated
/// cycle charge (PerAppInstr + Base + op extras — safe to fold because
/// inline ops cannot fault mid-way), Retired.
void Compiler::emitAppPre(const CacheOp &Op) {
  E.movMI32sx(R15, ML.PC, static_cast<int32_t>(Op.OrigAddr));
  uint64_t K = Env.PerAppInstr + cost::Base + extraCycles(Op.I.Op);
  E.aluMI(Alu::Add, R15, ML.Cycles, static_cast<int32_t>(K));
  E.incM(R15, ML.Retired);
}

/// Post-execute bookkeeping for an inline app op: Steps, LastAppPC, and
/// the amortized watchdog probe ((Steps & 1023) == 0), identical to the
/// interpreter loop.
void Compiler::emitPostApp(uint64_t OrigAddr) {
  E.incM(R14, JZ_FOFF(Steps));
  E.movMI32sx(R14, JZ_FOFF(LastAppPC), static_cast<int32_t>(OrigAddr));
  E.movRM(RAX, R14, JZ_FOFF(Steps));
  E.testRI32(RAX, 1023);
  size_t Skip = E.jcc(Cond::NE);
  E.movRR(RDI, R14);
  callFn(jzWatchdog);
  E.testRR32(RAX, RAX);
  EpiFix.push_back(E.jcc(Cond::NE));
  E.patchHere(Skip);
}

void Compiler::emitApp(uint32_t I) {
  const CacheOp &Op = B.Ops[I];
  const Instruction &In = Op.I;

  if (jitStencil(In.Op) == JitStencil::Helper) {
    callOpHelper(jzAppOp, I);
    E.aluRI32(Alu::Cmp, RAX, static_cast<int32_t>(HelperExit));
    EpiFix.push_back(E.jcc(Cond::E));
    emitCutBoundary(I, /*Conditional=*/true);
    return;
  }

  emitAppPre(Op);
  switch (In.Op) {
  case Opcode::HLT:
    emitPostApp(Op.OrigAddr);
    E.movMI32(R14, JZ_FOFF(ExitKind),
              static_cast<uint32_t>(jit::JitExit::Exited));
    EpiFix.push_back(E.jmp());
    return;
  case Opcode::JMP:
    emitPostApp(Op.OrigAddr);
    emitTakenTransfer(In.branchTarget(Op.OrigAddr), CTIKind::DirectJump);
    return;
  case Opcode::JE:
  case Opcode::JNE:
  case Opcode::JL:
  case Opcode::JLE:
  case Opcode::JG:
  case Opcode::JGE:
  case Opcode::JB:
  case Opcode::JAE: {
    emitPostApp(Op.OrigAddr);
    size_t NotTaken = emitCondJcc(In.Op, /*Negate=*/true);
    emitTakenTransfer(In.branchTarget(Op.OrigAddr), CTIKind::CondJump);
    E.patchHere(NotTaken);
    // Not-taken: a terminator's fall-through. In a trace this is either
    // an internal hop or an exit; in a plain block it falls to the next
    // op (usually the end label).
    uint64_t Fall = Op.OrigAddr + In.Size;
    if (B.IsTrace) {
      if (const uint32_t *Idx = B.traceEntryFor(Fall)) {
        emitTransitionStores(Fall);
        IdxFix.push_back({E.jmp(), *Idx});
      } else {
        emitExitStatic(Fall, CTIKind::None);
      }
    }
    return;
  }
  case Opcode::CALL:
    E.movRI(RAX, Op.OrigAddr + In.Size);
    emitPush64FromRax();
    emitPostApp(Op.OrigAddr);
    emitTakenTransfer(In.branchTarget(Op.OrigAddr), CTIKind::DirectCall);
    return;
  case Opcode::CALLR:
    // Target read before the push (CALLR SP would see the pre-push SP).
    E.movRM(RBX, R15, ML.reg(In.Rd));
    E.movRI(RAX, Op.OrigAddr + In.Size);
    emitPush64FromRax();
    emitPostApp(Op.OrigAddr);
    emitExitDynRbx(CTIKind::IndirectCall);
    return;
  case Opcode::CALLM:
    emitEA(In.Mem, Op.OrigAddr, In.Size);
    E.movRR(RDI, R13);
    callFn(jzRead64);
    E.movRR(RBX, RAX);
    E.movRI(RAX, Op.OrigAddr + In.Size);
    emitPush64FromRax();
    emitPostApp(Op.OrigAddr);
    emitExitDynRbx(CTIKind::IndirectCall);
    return;
  case Opcode::JMPR:
    E.movRM(RBX, R15, ML.reg(In.Rd));
    emitPostApp(Op.OrigAddr);
    emitExitDynRbx(CTIKind::IndirectJump);
    return;
  case Opcode::JMPM:
    emitEA(In.Mem, Op.OrigAddr, In.Size);
    E.movRR(RDI, R13);
    callFn(jzRead64);
    E.movRR(RBX, RAX);
    emitPostApp(Op.OrigAddr);
    emitExitDynRbx(CTIKind::IndirectJump);
    return;
  case Opcode::RET: {
    E.movRM(RSI, R15, ML.reg(Reg::SP));
    E.movRR(RDI, R13);
    callFn(jzRead64);
    E.movRR(RBX, RAX);
    E.aluMI(Alu::Add, R15, ML.reg(Reg::SP), 8);
    emitPostApp(Op.OrigAddr);
    // Sentinel returns end the process / thread instead of transferring.
    E.movRI(RAX, layout::ExitSentinel);
    E.aluRR(Alu::Cmp, RBX, RAX);
    size_t NotExit = E.jcc(Cond::NE);
    E.movMI32(R14, JZ_FOFF(ExitKind),
              static_cast<uint32_t>(jit::JitExit::Exited));
    EpiFix.push_back(E.jmp());
    E.patchHere(NotExit);
    E.movRI(RAX, layout::ThreadExitSentinel);
    E.aluRR(Alu::Cmp, RBX, RAX);
    size_t NotThread = E.jcc(Cond::NE);
    E.movMI32(R14, JZ_FOFF(ExitKind),
              static_cast<uint32_t>(jit::JitExit::ThreadExit));
    EpiFix.push_back(E.jmp());
    E.patchHere(NotThread);
    emitExitDynRbx(CTIKind::Return);
    return;
  }
  default:
    emitBody(In, Op.OrigAddr);
    emitPostApp(Op.OrigAddr);
    emitCutBoundary(I, /*Conditional=*/false);
    return;
  }
}

void Compiler::emitMeta(uint32_t I) {
  const CacheOp &Op = B.Ops[I];
  const Instruction &In = Op.I;

  if (!metaInlineable(Op)) {
    callOpHelper(jzMetaOp, I);
    E.testRR32(RAX, RAX);
    size_t Fall = E.jcc(Cond::E);
    if (Op.SkipToIdx != ~0u) {
      E.aluRI32(Alu::Cmp, RAX, static_cast<int32_t>(HelperMetaTaken));
      IdxFix.push_back({E.jcc(Cond::E), Op.SkipToIdx});
    }
    EpiFix.push_back(E.jmp());
    E.patchHere(Fall);
    return;
  }

  // Inline meta: interpreter charges Base + extras and retires it, with
  // no PC / Steps / watchdog bookkeeping.
  E.aluMI(Alu::Add, R15, ML.Cycles,
          static_cast<int32_t>(cost::Base + extraCycles(In.Op)));
  E.incM(R15, ML.Retired);

  switch (In.Op) {
  case Opcode::JMP:
    if (Op.SkipToIdx == ~0u)
      UnboundFix.push_back(E.jmp());
    else
      IdxFix.push_back({E.jmp(), Op.SkipToIdx});
    return;
  case Opcode::JE:
  case Opcode::JNE:
  case Opcode::JL:
  case Opcode::JLE:
  case Opcode::JG:
  case Opcode::JGE:
  case Opcode::JB:
  case Opcode::JAE: {
    size_t Taken = emitCondJcc(In.Op, /*Negate=*/false);
    if (Op.SkipToIdx == ~0u)
      UnboundFix.push_back(Taken);
    else
      IdxFix.push_back({Taken, Op.SkipToIdx});
    return;
  }
  default:
    emitBody(In, /*OrigPC=*/0);
    return;
  }
}

void Compiler::emitHook(uint32_t I) {
  callOpHelper(jzHook, I);
  E.testRR32(RAX, RAX);
  EpiFix.push_back(E.jcc(Cond::NE));
}

void Compiler::emitEnd() {
  uint64_t Next = staticEndNext();
  if (Next) {
    emitExitStatic(Next, CTIKind::None);
    return;
  }
  auto Msg = std::make_unique<std::string>(
      formatString("fell off translated block at 0x%llx",
                   static_cast<unsigned long long>(B.AppStart)));
  const char *P = Msg->c_str();
  JC.OwnedStrings.push_back(std::move(Msg));
  emitFaultLit(P);
}

void Compiler::emitStubsAndPatch() {
  size_t UnboundLabel = E.here();
  emitFaultLit("unbound meta branch");

  size_t DoneLabel = E.here();
  E.movMI32(R14, JZ_FOFF(ExitKind),
            static_cast<uint32_t>(jit::JitExit::DoneStop));
  EpiFix.push_back(E.jmp());

  size_t StepLabel = E.here();
  E.movMI32(R14, JZ_FOFF(ExitKind),
            static_cast<uint32_t>(jit::JitExit::StepLimit));
  // falls into the epilogue

  size_t Epi = E.here();
  E.aluRI(Alu::Add, RSP, 8);
  E.pop(R15);
  E.pop(R14);
  E.pop(R13);
  E.pop(R12);
  E.pop(RBP);
  E.pop(RBX);
  E.ret();

  for (size_t Pos : UnboundFix)
    E.patchRel32(Pos, UnboundLabel);
  for (size_t Pos : DoneFix)
    E.patchRel32(Pos, DoneLabel);
  for (size_t Pos : StepFix)
    E.patchRel32(Pos, StepLabel);
  for (size_t Pos : EpiFix)
    E.patchRel32(Pos, Epi);
  for (const auto &[Pos, Idx] : IdxFix)
    E.patchRel32(Pos, Labels[Idx]);
}

bool Compiler::run() {
  if (!precheck())
    return false;
  Labels.assign(B.Ops.size() + 1, 0);
  emitPrologue();
  for (uint32_t I = 0; I < B.Ops.size(); ++I) {
    Labels[I] = E.here();
    if (B.IsTrace)
      emitGuard();
    switch (B.Ops[I].K) {
    case CacheOp::Kind::App:
      emitApp(I);
      break;
    case CacheOp::Kind::Meta:
      emitMeta(I);
      break;
    case CacheOp::Kind::Hook:
      emitHook(I);
      break;
    }
  }
  Labels[B.Ops.size()] = E.here();
  emitEnd();
  emitStubsAndPatch();
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

bool jit::hostSupported() {
#if defined(__x86_64__) || defined(_M_X64)
  return ExecArena::supported();
#else
  return false;
#endif
}

std::unique_ptr<jit::JitCode> jit::compile(const CacheBlock &Block,
                                           const CompileEnv &Env) {
  if (!hostSupported())
    return nullptr;
  auto JC = std::make_unique<JitCode>();
  Compiler C(Block, Env, *JC);
  if (!C.run())
    return nullptr;
  const void *Span = Env.Arena->publish(C.E.bytes().data(), C.E.size());
  if (!Span)
    return nullptr; // arena exhausted: stay on the interpreter tier
  JC->Entry = Span;
  JC->CodeBytes = C.E.size();
  JC->Arena = Env.Arena;
  return JC;
}

DbiTool &jit::JitSupport::tool(DbiEngine &E) { return E.Tool; }
const DbiCostModel &jit::JitSupport::costs(const DbiEngine &E) {
  return E.Costs;
}
const RunBudget &jit::JitSupport::budget(const DbiEngine &E) {
  return E.Budget;
}
bool jit::JitSupport::wallDeadlinePassed(const DbiEngine &E) {
  return std::chrono::steady_clock::now() >= E.WallDeadline;
}
bool jit::JitSupport::lastViolation(DbiEngine &E, uint8_t &Code,
                                    uint64_t &PC) {
  std::lock_guard<std::mutex> G(E.VioMtx);
  if (E.Violations.empty())
    return false;
  Code = E.Violations.back().Code;
  PC = E.Violations.back().PC;
  return true;
}
