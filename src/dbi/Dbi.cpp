//===- dbi/Dbi.cpp --------------------------------------------------------==//

#include "dbi/Dbi.h"

#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace janitizer;

void DbiStats::publishMetrics() const {
  MetricsRegistry &M = MetricsRegistry::instance();
  M.counter("jz.dbi.blocks_built").set(BlocksBuilt);
  M.counter("jz.dbi.blocks_executed").set(BlocksExecuted);
  M.counter("jz.dbi.indirect_lookups").set(IndirectLookups);
  M.counter("jz.dbi.clean_calls").set(CleanCalls);
  M.counter("jz.dbi.static_blocks").set(StaticBlocks);
  M.counter("jz.dbi.dynamic_blocks").set(DynamicBlocks);
  M.counter("jz.dbi.dispatch_entries").set(DispatchEntries);
  M.counter("jz.dbi.links_followed").set(LinksFollowed);
  M.counter("jz.dbi.ibl_hits").set(IblHits);
  M.counter("jz.dbi.ibl_misses").set(IblMisses);
  M.counter("jz.dbi.traces_built").set(TracesBuilt);
  M.counter("jz.dbi.trace_transitions").set(TraceTransitions);
}

/// A kill-switch env var disables its feature when set to anything but
/// "" or "0" — JZ_NO_LINK=1 forces dispatch-every-block, JZ_NO_TRACE=1
/// keeps links but never stitches traces (differential testing).
static bool envKillSwitch(const char *Name) {
  const char *V = std::getenv(Name);
  return V && *V && std::strcmp(V, "0") != 0;
}

DbiEngine::DbiEngine(Process &P, DbiTool &Tool, DbiCostModel Costs)
    : P(P), Tool(Tool), Costs(Costs) {
  Linking = this->Costs.LinkBlocks && !envKillSwitch("JZ_NO_LINK");
  Tracing =
      Linking && this->Costs.BuildTraces && !envKillSwitch("JZ_NO_TRACE");
  P.addObserver(this);
}

void DbiEngine::recordViolation(uint8_t Code, uint64_t PC, uint64_t Detail,
                                std::string What) {
  Violations.push_back({Code, PC, Detail, std::move(What)});
}

void DbiEngine::invalidateLinks() {
  // Unlink-before-erase: bumping the generation makes every outstanding
  // link and per-site IBL entry unfollowable *before* any block is
  // destroyed; the global IBL table has no generation and is dropped
  // outright. An in-progress trace recording may reference blocks that
  // are about to die, so it is abandoned too.
  ++LinkGen;
  IblTable.clear();
  Recording = false;
  TraceBuf.clear();
}

void DbiEngine::flushRange(uint64_t Addr, uint64_t Len) {
  if (!Len)
    return;
  uint64_t End = Addr + Len;
  bool Evicted = false;
  // Evict on [AppStart, AppEnd) *overlap*, not head containment: a block
  // whose head lies below Addr but whose tail spans into the range holds
  // stale translations of the flushed bytes.
  for (auto It = Cache.begin(); It != Cache.end();) {
    if (It->second->overlapsRange(Addr, End)) {
      Graveyard.push_back(std::move(It->second));
      It = Cache.erase(It);
      Evicted = true;
    } else {
      ++It;
    }
  }
  for (auto It = Traces.begin(); It != Traces.end();) {
    if (It->second->overlapsRange(Addr, End)) {
      Graveyard.push_back(std::move(It->second));
      It = Traces.erase(It);
      Evicted = true;
    } else {
      ++It;
    }
  }
  // Evicted blocks go to the graveyard, not straight to the heap: a
  // syscall inside the currently executing block (dlclose, JIT remap) can
  // flush that very block, and its ops must stay valid until the next
  // dispatcher entry.
  if (Evicted)
    invalidateLinks();
}

CacheBlock *DbiEngine::buildBlock(uint64_t PC) {
  // Translation (cache-miss) granularity: never on the block re-dispatch
  // path, so an armed trace does not perturb steady-state execution.
  JZ_TRACE_SPAN("dispatch.buildBlock");
  auto Block = std::make_unique<CacheBlock>();
  Block->AppStart = PC;

  // Decode the application block: up to the first terminator, or until we
  // run into the head of an already-translated block (keeps blocks small
  // and mirrors DynamoRIO's block shattering).
  std::vector<DecodedInstrRT> Instrs;
  uint64_t Cur = PC;
  while (true) {
    if (Cur != PC && Cache.count(Cur)) {
      Block->FallthroughTarget = Cur;
      break;
    }
    Instruction I;
    if (!P.fetch(Cur, I))
      break; // undecodable: executing past here faults at run time
    Instrs.push_back({I, Cur});
    if (isTerminator(I.Op))
      break;
    Cur += I.Size;
    if (Instrs.size() >= 512) { // block length bound
      Block->FallthroughTarget = Cur;
      break;
    }
  }
  if (Instrs.empty())
    return nullptr;
  Block->AppEnd = Instrs.back().Addr + Instrs.back().I.Size;

  BlockBuilder B(*Block);
  Tool.instrumentBlock(*this, *Block, B, Instrs);
  assert(Block->AppInstrs == Instrs.size() &&
         "tool must append every application instruction");

  // Charge translation work.
  charge(Costs.TranslationPerInstr * Instrs.size());
  ++Stats.BlocksBuilt;
  if (Block->StaticallySeen)
    ++Stats.StaticBlocks;
  else
    ++Stats.DynamicBlocks;

  CacheBlock *Ptr = Block.get();
  Cache[PC] = std::move(Block);
  return Ptr;
}

CacheBlock *DbiEngine::findBlock(uint64_t Addr) {
  if (Tracing) {
    auto It = Traces.find(Addr);
    if (It != Traces.end())
      return It->second.get();
  }
  auto It = Cache.find(Addr);
  return It == Cache.end() ? nullptr : It->second.get();
}

CacheBlock *DbiEngine::lookupOrBuild(uint64_t PC, bool &WasMiss) {
  if (CacheBlock *B = findBlock(PC)) {
    WasMiss = false;
    return B;
  }
  WasMiss = true;
  return buildBlock(PC);
}

void DbiEngine::noteBlockEntered(CacheBlock *Block) {
  if (Recording) {
    // The recorded tail ends where it would stop being a simple path:
    // at an existing trace, at the stitch bound, or when the path
    // revisits a block already in the buffer (loop closure).
    if (Block->IsTrace || TraceBuf.size() >= MaxTraceBlocks ||
        std::find(TraceBuf.begin(), TraceBuf.end(), Block) != TraceBuf.end()) {
      finishTrace();
      return;
    }
    TraceBuf.push_back(Block);
    return;
  }
  // Re-arm every TraceThreshold executions (not just the first crossing):
  // module load tears traces down, and their heads must be able to
  // re-trace once they get hot again.
  if (!Block->IsTrace && Block->ExecCount % TraceThreshold == 0 &&
      !Traces.count(Block->AppStart)) {
    Recording = true;
    TraceBuf.assign(1, Block);
  }
}

void DbiEngine::finishTrace() {
  Recording = false;
  std::vector<CacheBlock *> Buf;
  Buf.swap(TraceBuf);
  if (Buf.size() < 2 || Traces.count(Buf.front()->AppStart))
    return;
  // Trace stitching is a cold path (once per hot head) — span it; the
  // steady-state link/trace follow paths are never traced.
  JZ_TRACE_SPAN("dispatch.buildTrace");
  auto T = std::make_unique<CacheBlock>();
  T->IsTrace = true;
  T->AppStart = Buf.front()->AppStart;
  T->AppEnd = Buf.front()->AppEnd;
  T->StaticallySeen = Buf.front()->StaticallySeen;
  // Ops past the last constituent's terminator fall through exactly like
  // the constituent itself would.
  T->FallthroughTarget = Buf.back()->FallthroughTarget;
  for (CacheBlock *C : Buf) {
    uint32_t Base = static_cast<uint32_t>(T->Ops.size());
    T->TraceEntries.push_back({C->AppStart, Base});
    T->AppRanges.push_back({C->AppStart, C->AppEnd});
    if (C->StaticallySeen)
      ++T->StaticConstituents;
    else
      ++T->DynamicConstituents;
    for (const CacheOp &Op : C->Ops) {
      T->Ops.push_back(Op);
      // Meta-branch skip indices are block-relative; rebase them.
      if (Op.SkipToIdx != ~0u)
        T->Ops.back().SkipToIdx = Op.SkipToIdx + Base;
    }
    T->AppInstrs += C->AppInstrs;
  }
  // Stitching copies already-translated ops — a small fraction of
  // translation cost.
  charge(T->Ops.size());
  ++Stats.TracesBuilt;
  uint64_t Head = T->AppStart;
  Traces[Head] = std::move(T);
  // The trace shadows its head block: links and IBL entries resolved
  // before it existed still route to the plain block and would keep the
  // trace cold forever. Invalidate so incoming transitions re-resolve
  // (rare — once per hot head).
  invalidateLinks();
}

RunResult DbiEngine::run(uint64_t MaxSteps) {
  RunResult RR;
  Machine &M = P.M;
  uint64_t PC = M.PC;
  uint64_t Steps = 0;

  auto Finish = [&](RunResult::Status St) {
    RR.St = St;
    RR.Cycles = M.Cycles;
    RR.Retired = M.Retired;
    return RR;
  };

  // Non-null between iterations when the previous block exited through a
  // followed link / IBL hit / trace continuation — the dispatcher (probe
  // + code-cache lookup) is bypassed entirely.
  CacheBlock *Block = nullptr;

  while (Steps < MaxSteps) {
    if (!Block) {
      // ---- dispatcher entry ----
      Graveyard.clear();
      ++Stats.DispatchEntries;
      // Tool interposition (e.g. sanitizer allocator replacing malloc).
      if (Tool.interceptTarget(*this, PC)) {
        PC = M.PC;
        continue;
      }
      bool Miss = false;
      Block = lookupOrBuild(PC, Miss);
      if (!Block) {
        RR.FaultMsg = formatString("undecodable code at 0x%llx",
                                   static_cast<unsigned long long>(PC));
        return Finish(RunResult::Status::Faulted);
      }
      // Seed the global IBL table: future indirect transfers to this
      // address can resolve without the dispatcher. Never for
      // interposition sites — those must take the probe above.
      if (Linking && !Tool.isInterposedTarget(*this, PC))
        IblTable[PC] = Block;
    }
    ++Block->ExecCount;
    ++Stats.BlocksExecuted;
    if (Tracing)
      noteBlockEntered(Block);

    // Execute the translated ops.
    size_t OpIdx = 0;
    bool BlockDone = false;
    uint64_t NextPC = Block->FallthroughTarget;
    uint64_t ImplicitNext = 0;
    CTIKind TransferKind = CTIKind::None;
    // Original head of the currently executing (constituent) block: equal
    // to PC for plain blocks, updated at every internal trace transition
    // so trap attribution is identical with and without traces.
    uint64_t CurHead = PC;
    // Most recent executed application instruction address (trap
    // attribution for meta traps emitted after their app instruction).
    uint64_t LastAppPC = 0;

    // Traces can loop internally (that is the point), so the step bound
    // must be enforced inside the op loop; plain blocks are finite.
    while (OpIdx < Block->Ops.size() && !BlockDone &&
           (!Block->IsTrace || Steps < MaxSteps)) {
      CacheOp &Op = Block->Ops[OpIdx];
      switch (Op.K) {
      case CacheOp::Kind::Hook: {
        if (Op.InlineHook) {
          M.addCycles(Op.HookCost);
        } else {
          M.addCycles(Costs.CleanCallBase + Op.HookCost);
          ++Stats.CleanCalls;
        }
        HookAction A = Tool.onHook(*this, Op);
        if (A == HookAction::Abort) {
          RR.TrapCode = Violations.empty() ? 0 : Violations.back().Code;
          RR.TrapPC = Violations.empty() ? CurHead : Violations.back().PC;
          return Finish(RunResult::Status::Trapped);
        }
        if (A == HookAction::SkipBlockRest)
          BlockDone = true;
        ++OpIdx;
        break;
      }
      case CacheOp::Kind::Meta: {
        // Meta code runs with a zero "original PC": pc-relative meta
        // operands are disallowed by construction.
        ExecResult E = M.execute(Op.I, 0);
        switch (E.K) {
        case ExecResult::Kind::Fallthrough:
          ++OpIdx;
          break;
        case ExecResult::Kind::Branch:
          // Taken meta-branch: jump within the block.
          if (Op.SkipToIdx == ~0u) {
            RR.FaultMsg = "unbound meta branch";
            return Finish(RunResult::Status::Faulted);
          }
          OpIdx = Op.SkipToIdx;
          break;
        case ExecResult::Kind::Trap: {
          // Attribute the trap to the application instruction the meta
          // sequence guards: the next app op (checks are emitted before
          // their instruction), else the last executed app instruction,
          // else the block head.
          uint64_t TrapPC = 0;
          for (size_t NI = OpIdx + 1; NI < Block->Ops.size(); ++NI)
            if (Block->Ops[NI].K == CacheOp::Kind::App) {
              TrapPC = Block->Ops[NI].OrigAddr;
              break;
            }
          if (!TrapPC)
            TrapPC = LastAppPC ? LastAppPC : CurHead;
          HookAction A = Tool.onTrap(*this, E.TrapCode, TrapPC);
          if (A == HookAction::Abort) {
            RR.TrapCode = E.TrapCode;
            RR.TrapPC = TrapPC;
            return Finish(RunResult::Status::Trapped);
          }
          ++OpIdx;
          break;
        }
        case ExecResult::Kind::Fault:
          RR.FaultMsg = E.FaultMsg ? E.FaultMsg : "meta fault";
          return Finish(RunResult::Status::Faulted);
        default:
          RR.FaultMsg = "meta instruction attempted control transfer";
          return Finish(RunResult::Status::Faulted);
        }
        break;
      }
      case CacheOp::Kind::App: {
        // The syscall handler may consult M.PC (lazy binding / module id).
        M.PC = Op.OrigAddr;
        if (Costs.PerAppInstr)
          M.addCycles(Costs.PerAppInstr);
        ExecResult E = M.execute(Op.I, Op.OrigAddr);
        ++Steps;
        LastAppPC = Op.OrigAddr;
        switch (E.K) {
        case ExecResult::Kind::Fallthrough: {
          // A not-taken conditional branch at the block end continues at
          // the original fall-through address.
          ImplicitNext = Op.OrigAddr + Op.I.Size;
          if (Block->IsTrace) {
            if (isTerminator(Op.I.Op)) {
              // Not-taken Jcc inside a trace: the stitched successor is
              // the *recorded* (taken) one, so only continue when the
              // fall-through address itself heads a constituent.
              if (const uint32_t *Idx = Block->traceEntryFor(ImplicitNext)) {
                OpIdx = *Idx;
                CurHead = ImplicitNext;
                ++Stats.TraceTransitions;
                break;
              }
              NextPC = ImplicitNext;
              TransferKind = CTIKind::None;
              BlockDone = true;
              break;
            }
            // Cut-block boundary: the next constituent must be the block
            // the cut falls into (recording may have diverged through
            // interposition or shattering drift).
            uint32_t NI = static_cast<uint32_t>(OpIdx + 1);
            if (const uint64_t *Head = Block->traceHeadAtOp(NI)) {
              if (*Head == ImplicitNext) {
                OpIdx = NI;
                CurHead = ImplicitNext;
                ++Stats.TraceTransitions;
                break;
              }
              NextPC = ImplicitNext;
              TransferKind = CTIKind::None;
              BlockDone = true;
              break;
            }
          }
          ++OpIdx;
          break;
        }
        case ExecResult::Kind::Branch:
        case ExecResult::Kind::Call:
        case ExecResult::Kind::Return: {
          CTIKind K = ctiKind(Op.I.Op);
          if (Block->IsTrace &&
              (K == CTIKind::DirectJump || K == CTIKind::CondJump ||
               K == CTIKind::DirectCall)) {
            // Internal direct transfer: continue inside the superblock
            // for free. Indirect transfers always exit to the IBL path
            // so onIndirectTransfer still fires.
            if (const uint32_t *Idx = Block->traceEntryFor(E.Target)) {
              OpIdx = *Idx;
              CurHead = E.Target;
              ++Stats.TraceTransitions;
              break;
            }
          }
          NextPC = E.Target;
          TransferKind = K;
          BlockDone = true;
          break;
        }
        case ExecResult::Kind::Exited:
          RR.ExitCode = P.exitCode() ? P.exitCode()
                                     : static_cast<int>(M.reg(Reg::R0));
          return Finish(RunResult::Status::Exited);
        case ExecResult::Kind::Trap: {
          HookAction A = Tool.onTrap(*this, E.TrapCode, Op.OrigAddr);
          if (A == HookAction::Abort) {
            RR.TrapCode = E.TrapCode;
            RR.TrapPC = Op.OrigAddr;
            return Finish(RunResult::Status::Trapped);
          }
          ++OpIdx;
          break;
        }
        case ExecResult::Kind::Fault:
          RR.FaultMsg = E.FaultMsg ? E.FaultMsg : "fault";
          return Finish(RunResult::Status::Faulted);
        }
        break;
      }
      }
    }

    if (Steps >= MaxSteps && !BlockDone && OpIdx < Block->Ops.size())
      return Finish(RunResult::Status::StepLimit); // stopped inside a trace

    if (!BlockDone && NextPC == 0) {
      if (ImplicitNext) {
        // The block ended with a not-taken conditional branch (or was cut
        // at a block-length bound): continue at the fall-through address.
        NextPC = ImplicitNext;
      } else {
        // The app ran into undecodable bytes.
        RR.FaultMsg = formatString("fell off translated block at 0x%llx",
                                   static_cast<unsigned long long>(PC));
        return Finish(RunResult::Status::Faulted);
      }
    }

    // ---- exit dispatch ----
    CacheBlock *Next = nullptr;
    switch (TransferKind) {
    case CTIKind::IndirectCall:
    case CTIKind::IndirectJump:
    case CTIKind::Return: {
      if (Recording)
        finishTrace(); // NET traces end at indirect transfers
      // Two-level IBL: the per-site inline cache first, then the global
      // table. Either hit chains straight to the target block; both
      // paths still invoke onIndirectTransfer (JCFI edge checks).
      CacheBlock *Hit = nullptr;
      if (Linking)
        for (const CacheBlock::IblEntry &En : Block->Ibl)
          if (En.Blk && En.Gen == LinkGen && En.Target == NextPC) {
            Hit = En.Blk;
            break;
          }
      if (Hit) {
        M.addCycles(Costs.IblHit);
        ++Stats.IblHits;
        Tool.onIndirectTransfer(*this, TransferKind, CurHead, NextPC);
        Next = Hit;
      } else {
        M.addCycles(Costs.IndirectLookup);
        ++Stats.IndirectLookups;
        ++Stats.IblMisses;
        Tool.onIndirectTransfer(*this, TransferKind, CurHead, NextPC);
        if (Linking) {
          auto It = IblTable.find(NextPC);
          if (It != IblTable.end()) {
            Next = It->second;
            // Promote into the per-site cache (round-robin victim).
            CacheBlock::IblEntry &Slot = Block->Ibl[Block->IblVictim];
            Block->IblVictim = static_cast<uint8_t>(
                (Block->IblVictim + 1) % CacheBlock::IblWays);
            Slot.Target = NextPC;
            Slot.Blk = Next;
            Slot.Gen = LinkGen;
          }
        }
      }
      break;
    }
    default: {
      // Direct transfer (taken jump/call) or fall-through. Follow the
      // exit link when it is current, else resolve it on this (first)
      // execution — but never to an interposition site, whose dispatcher
      // probe must keep firing.
      if (!Linking)
        break;
      CacheBlock::ExitLink &L = TransferKind == CTIKind::None
                                    ? Block->LinkFall
                                    : Block->LinkTaken;
      if (L.Target && L.Gen == LinkGen && L.TargetAddr == NextPC) {
        ++Stats.LinksFollowed;
        Next = L.Target;
      } else if (CacheBlock *T = findBlock(NextPC)) {
        if (!Tool.isInterposedTarget(*this, NextPC)) {
          L.Target = T;
          L.TargetAddr = NextPC;
          L.Gen = LinkGen;
          Next = T;
        }
      }
      break;
    }
    }
    PC = NextPC;
    Block = Next;
  }
  return Finish(RunResult::Status::StepLimit);
}
