//===- dbi/Dbi.cpp --------------------------------------------------------==//

#include "dbi/Dbi.h"

#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Trace.h"

using namespace janitizer;

void DbiStats::publishMetrics() const {
  MetricsRegistry &M = MetricsRegistry::instance();
  M.counter("jz.dbi.blocks_built").set(BlocksBuilt);
  M.counter("jz.dbi.blocks_executed").set(BlocksExecuted);
  M.counter("jz.dbi.indirect_lookups").set(IndirectLookups);
  M.counter("jz.dbi.clean_calls").set(CleanCalls);
  M.counter("jz.dbi.static_blocks").set(StaticBlocks);
  M.counter("jz.dbi.dynamic_blocks").set(DynamicBlocks);
}

void DbiEngine::recordViolation(uint8_t Code, uint64_t PC, uint64_t Detail,
                                std::string What) {
  Violations.push_back({Code, PC, Detail, std::move(What)});
}

void DbiEngine::flushRange(uint64_t Addr, uint64_t Len) {
  for (auto It = Cache.begin(); It != Cache.end();)
    if (It->first >= Addr && It->first < Addr + Len)
      It = Cache.erase(It);
    else
      ++It;
}

CacheBlock *DbiEngine::buildBlock(uint64_t PC) {
  // Translation (cache-miss) granularity: never on the block re-dispatch
  // path, so an armed trace does not perturb steady-state execution.
  JZ_TRACE_SPAN("dispatch.buildBlock");
  auto Block = std::make_unique<CacheBlock>();
  Block->AppStart = PC;

  // Decode the application block: up to the first terminator, or until we
  // run into the head of an already-translated block (keeps blocks small
  // and mirrors DynamoRIO's block shattering).
  std::vector<DecodedInstrRT> Instrs;
  uint64_t Cur = PC;
  while (true) {
    if (Cur != PC && Cache.count(Cur)) {
      Block->FallthroughTarget = Cur;
      break;
    }
    Instruction I;
    if (!P.fetch(Cur, I))
      break; // undecodable: executing past here faults at run time
    Instrs.push_back({I, Cur});
    if (isTerminator(I.Op))
      break;
    Cur += I.Size;
    if (Instrs.size() >= 512) { // block length bound
      Block->FallthroughTarget = Cur;
      break;
    }
  }
  if (Instrs.empty())
    return nullptr;

  BlockBuilder B(*Block);
  Tool.instrumentBlock(*this, *Block, B, Instrs);
  assert(Block->AppInstrs == Instrs.size() &&
         "tool must append every application instruction");

  // Charge translation work.
  charge(Costs.TranslationPerInstr * Instrs.size());
  ++Stats.BlocksBuilt;
  if (Block->StaticallySeen)
    ++Stats.StaticBlocks;
  else
    ++Stats.DynamicBlocks;

  CacheBlock *Ptr = Block.get();
  Cache[PC] = std::move(Block);
  return Ptr;
}

CacheBlock *DbiEngine::lookupOrBuild(uint64_t PC, bool &WasMiss) {
  auto It = Cache.find(PC);
  if (It != Cache.end()) {
    WasMiss = false;
    return It->second.get();
  }
  WasMiss = true;
  return buildBlock(PC);
}

RunResult DbiEngine::run(uint64_t MaxSteps) {
  RunResult RR;
  Machine &M = P.M;
  uint64_t PC = M.PC;
  uint64_t Steps = 0;

  auto Finish = [&](RunResult::Status St) {
    RR.St = St;
    RR.Cycles = M.Cycles;
    RR.Retired = M.Retired;
    return RR;
  };

  while (Steps < MaxSteps) {
    // Tool interposition (e.g. sanitizer allocator replacing malloc).
    if (Tool.interceptTarget(*this, PC)) {
      PC = M.PC;
      continue;
    }

    bool Miss = false;
    CacheBlock *Block = lookupOrBuild(PC, Miss);
    if (!Block) {
      RR.FaultMsg = formatString("undecodable code at 0x%llx",
                                 static_cast<unsigned long long>(PC));
      return Finish(RunResult::Status::Faulted);
    }
    ++Block->ExecCount;
    ++Stats.BlocksExecuted;

    // Execute the translated ops.
    size_t OpIdx = 0;
    bool BlockDone = false;
    uint64_t NextPC = Block->FallthroughTarget;
    uint64_t ImplicitNext = 0;
    CTIKind TransferKind = CTIKind::None;

    while (OpIdx < Block->Ops.size() && !BlockDone) {
      CacheOp &Op = Block->Ops[OpIdx];
      switch (Op.K) {
      case CacheOp::Kind::Hook: {
        if (Op.InlineHook) {
          M.addCycles(Op.HookCost);
        } else {
          M.addCycles(Costs.CleanCallBase + Op.HookCost);
          ++Stats.CleanCalls;
        }
        HookAction A = Tool.onHook(*this, Op);
        if (A == HookAction::Abort) {
          RR.TrapCode = Violations.empty() ? 0 : Violations.back().Code;
          RR.TrapPC = Violations.empty() ? PC : Violations.back().PC;
          return Finish(RunResult::Status::Trapped);
        }
        if (A == HookAction::SkipBlockRest)
          BlockDone = true;
        ++OpIdx;
        break;
      }
      case CacheOp::Kind::Meta: {
        // Meta code runs with a zero "original PC": pc-relative meta
        // operands are disallowed by construction.
        ExecResult E = M.execute(Op.I, 0);
        switch (E.K) {
        case ExecResult::Kind::Fallthrough:
          ++OpIdx;
          break;
        case ExecResult::Kind::Branch:
          // Taken meta-branch: jump within the block.
          if (Op.SkipToIdx == ~0u) {
            RR.FaultMsg = "unbound meta branch";
            return Finish(RunResult::Status::Faulted);
          }
          OpIdx = Op.SkipToIdx;
          break;
        case ExecResult::Kind::Trap: {
          HookAction A = Tool.onTrap(*this, E.TrapCode, PC);
          if (A == HookAction::Abort) {
            RR.TrapCode = E.TrapCode;
            RR.TrapPC = PC;
            return Finish(RunResult::Status::Trapped);
          }
          ++OpIdx;
          break;
        }
        case ExecResult::Kind::Fault:
          RR.FaultMsg = E.FaultMsg ? E.FaultMsg : "meta fault";
          return Finish(RunResult::Status::Faulted);
        default:
          RR.FaultMsg = "meta instruction attempted control transfer";
          return Finish(RunResult::Status::Faulted);
        }
        break;
      }
      case CacheOp::Kind::App: {
        // The syscall handler may consult M.PC (lazy binding / module id).
        M.PC = Op.OrigAddr;
        if (Costs.PerAppInstr)
          M.addCycles(Costs.PerAppInstr);
        ExecResult E = M.execute(Op.I, Op.OrigAddr);
        ++Steps;
        switch (E.K) {
        case ExecResult::Kind::Fallthrough:
          // A not-taken conditional branch at the block end continues at
          // the original fall-through address.
          ImplicitNext = Op.OrigAddr + Op.I.Size;
          ++OpIdx;
          break;
        case ExecResult::Kind::Branch:
        case ExecResult::Kind::Call:
        case ExecResult::Kind::Return: {
          NextPC = E.Target;
          TransferKind = ctiKind(Op.I.Op);
          BlockDone = true;
          break;
        }
        case ExecResult::Kind::Exited:
          RR.ExitCode = P.exitCode() ? P.exitCode()
                                     : static_cast<int>(M.reg(Reg::R0));
          return Finish(RunResult::Status::Exited);
        case ExecResult::Kind::Trap: {
          HookAction A = Tool.onTrap(*this, E.TrapCode, Op.OrigAddr);
          if (A == HookAction::Abort) {
            RR.TrapCode = E.TrapCode;
            RR.TrapPC = Op.OrigAddr;
            return Finish(RunResult::Status::Trapped);
          }
          ++OpIdx;
          break;
        }
        case ExecResult::Kind::Fault:
          RR.FaultMsg = E.FaultMsg ? E.FaultMsg : "fault";
          return Finish(RunResult::Status::Faulted);
        }
        break;
      }
      }
    }

    if (!BlockDone && NextPC == 0) {
      if (ImplicitNext) {
        // The block ended with a not-taken conditional branch (or was cut
        // at a block-length bound): continue at the fall-through address.
        NextPC = ImplicitNext;
      } else {
        // The app ran into undecodable bytes.
        RR.FaultMsg = formatString("fell off translated block at 0x%llx",
                                   static_cast<unsigned long long>(PC));
        return Finish(RunResult::Status::Faulted);
      }
    }

    // Dispatch. Indirect transfers pay the code-cache lookup; direct
    // transfers are linked after their first execution.
    switch (TransferKind) {
    case CTIKind::IndirectCall:
    case CTIKind::IndirectJump:
    case CTIKind::Return:
      M.addCycles(Costs.IndirectLookup);
      ++Stats.IndirectLookups;
      Tool.onIndirectTransfer(*this, TransferKind, PC, NextPC);
      break;
    default:
      break;
    }
    PC = NextPC;
  }
  return Finish(RunResult::Status::StepLimit);
}
