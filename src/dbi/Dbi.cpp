//===- dbi/Dbi.cpp --------------------------------------------------------==//

#include "dbi/Dbi.h"

#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace janitizer;

void DbiStats::publishMetrics() const {
  MetricsRegistry &M = MetricsRegistry::instance();
  M.counter("jz.dbi.blocks_built").set(BlocksBuilt);
  M.counter("jz.dbi.blocks_executed").set(BlocksExecuted);
  M.counter("jz.dbi.indirect_lookups").set(IndirectLookups);
  M.counter("jz.dbi.clean_calls").set(CleanCalls);
  M.counter("jz.dbi.static_blocks").set(StaticBlocks);
  M.counter("jz.dbi.dynamic_blocks").set(DynamicBlocks);
  M.counter("jz.dbi.dispatch_entries").set(DispatchEntries);
  M.counter("jz.dbi.links_followed").set(LinksFollowed);
  M.counter("jz.dbi.ibl_hits").set(IblHits);
  M.counter("jz.dbi.ibl_misses").set(IblMisses);
  M.counter("jz.dbi.traces_built").set(TracesBuilt);
  M.counter("jz.dbi.trace_transitions").set(TraceTransitions);
  M.counter("jz.dbi.jit.compiled").set(JitCompiled);
  M.counter("jz.dbi.jit.execs").set(JitExecs);
  M.counter("jz.dbi.jit.refused").set(JitRefused);
  M.counter("jz.dbi.jit.arena_bytes").set(JitArenaBytes);
}

/// A kill-switch env var disables its feature when set to anything but
/// "" or "0" — JZ_NO_LINK=1 forces dispatch-every-block, JZ_NO_TRACE=1
/// keeps links but never stitches traces (differential testing).
static bool envKillSwitch(const char *Name) {
  const char *V = std::getenv(Name);
  return V && *V && std::strcmp(V, "0") != 0;
}

/// The calling dispatcher thread's context while inside runThread; null
/// on any other thread (then charge()/machine() fall back to the main
/// machine — e.g. module-load callbacks during the initial loadProgram,
/// which happens before run()).
static thread_local ThreadContext *CurTC = nullptr;

namespace {
/// Publishes the context for the duration of runThread and guarantees the
/// epoch pin is dropped on every exit path.
struct DispatcherScope {
  ThreadContext &TC;
  explicit DispatcherScope(ThreadContext &T) : TC(T) { CurTC = &T; }
  ~DispatcherScope() {
    TC.Epoch.store(ThreadContext::Quiescent, std::memory_order_release);
    CurTC = nullptr;
  }
};
} // namespace

DbiEngine::DbiEngine(Process &P, DbiTool &Tool, DbiCostModel Costs)
    : P(P), Tool(Tool), Costs(Costs) {
  Linking = this->Costs.LinkBlocks && !envKillSwitch("JZ_NO_LINK");
  Tracing =
      Linking && this->Costs.BuildTraces && !envKillSwitch("JZ_NO_TRACE");
  Jitting = this->Costs.JitBlocks && !envKillSwitch("JZ_NO_JIT") &&
            jit::hostSupported();
  if (const char *T = std::getenv("JZ_JIT_THRESHOLD")) {
    uint64_t V = std::strtoull(T, nullptr, 10);
    JitThreshold = V ? V : 1;
  }
  if (Jitting) {
    size_t Max = ExecArena::DefaultMaxBytes;
    if (const char *A = std::getenv("JZ_JIT_ARENA_MAX"))
      Max = static_cast<size_t>(std::strtoull(A, nullptr, 10));
    JitArena = std::make_unique<ExecArena>(Max);
  }
  P.addObserver(this);
}

Machine &DbiEngine::machine() { return CurTC ? *CurTC->M : P.M; }

void DbiEngine::recordViolation(uint8_t Code, uint64_t PC, uint64_t Detail,
                                std::string What) {
  std::lock_guard<std::mutex> Lock(VioMtx);
  Violations.push_back({Code, PC, Detail, std::move(What)});
}

const LinkRec *DbiEngine::makeLinkRec(CacheBlock *Target, uint64_t Addr,
                                      uint64_t Gen) {
  auto R = std::make_unique<LinkRec>();
  R->Target = Target;
  R->TargetAddr = Addr;
  R->Gen = Gen;
  const LinkRec *Ptr = R.get();
  std::lock_guard<std::mutex> Lock(PoolMtx);
  LinkPool.push_back(std::move(R));
  return Ptr;
}

const IblRec *DbiEngine::makeIblRec(uint64_t Target, CacheBlock *Blk,
                                    uint64_t Gen) {
  auto R = std::make_unique<IblRec>();
  R->Target = Target;
  R->Blk = Blk;
  R->Gen = Gen;
  const IblRec *Ptr = R.get();
  std::lock_guard<std::mutex> Lock(PoolMtx);
  IblPool.push_back(std::move(R));
  return Ptr;
}

void DbiEngine::invalidateLinksLocked() {
  // Unlink-before-erase: bumping the generation makes every outstanding
  // link and per-site IBL entry unfollowable *before* any block is
  // destroyed; the global IBL table has no generation and is dropped
  // outright. The calling thread's in-progress trace recording may
  // reference blocks that are about to die, so it is abandoned too;
  // sibling threads' recordings die at their next noteBlockEntered via
  // the RecordGen check.
  LinkGen.fetch_add(1, std::memory_order_seq_cst);
  IblTable.clear();
  if (ThreadContext *TC = CurTC) {
    TC->Recording = false;
    TC->TraceBuf.clear();
  }
}

void DbiEngine::retire(std::vector<std::unique_ptr<CacheBlock>> Dead) {
  if (Dead.empty())
    return;
  // The links into these blocks were invalidated (generation bump) before
  // this point, so no *new* reference can form; the epoch stamp defers
  // the free until every existing reference is provably dropped.
  uint64_t E = GlobalEpoch.fetch_add(1, std::memory_order_seq_cst) + 1;
  std::lock_guard<std::mutex> Lock(GraveMtx);
  for (auto &B : Dead)
    Graveyard.push_back({std::move(B), E});
}

void DbiEngine::reclaimGraveyard() {
  std::lock_guard<std::mutex> Grave(GraveMtx);
  if (Graveyard.empty())
    return;
  uint64_t MinPin = ThreadContext::Quiescent;
  {
    std::lock_guard<std::mutex> Ctx(CtxMtx);
    for (const auto &TC : Contexts)
      MinPin = std::min(MinPin, TC->Epoch.load(std::memory_order_acquire));
  }
  // An entry retired at epoch E is free once every pin is >= E: a pin
  // taken after the retirement cannot have found the block (it left the
  // cache and its links were made unfollowable first), and every older
  // pin has been dropped. With one thread this degenerates to the seed
  // engine's "free the whole graveyard at dispatcher entry".
  std::erase_if(Graveyard,
                [&](const RetiredBlock &R) { return R.Epoch <= MinPin; });
}

void DbiEngine::flushRange(uint64_t Addr, uint64_t Len) {
  if (!Len)
    return;
  uint64_t End = Addr + Len;
  std::vector<std::unique_ptr<CacheBlock>> Dead;
  {
    std::unique_lock<std::shared_mutex> Lock(CacheMtx);
    // Evict on [AppStart, AppEnd) *overlap*, not head containment: a block
    // whose head lies below Addr but whose tail spans into the range holds
    // stale translations of the flushed bytes.
    for (auto It = Cache.begin(); It != Cache.end();) {
      if (It->second->overlapsRange(Addr, End)) {
        Dead.push_back(std::move(It->second));
        It = Cache.erase(It);
      } else {
        ++It;
      }
    }
    for (auto It = Traces.begin(); It != Traces.end();) {
      if (It->second->overlapsRange(Addr, End)) {
        Dead.push_back(std::move(It->second));
        It = Traces.erase(It);
      } else {
        ++It;
      }
    }
    if (!Dead.empty())
      invalidateLinksLocked();
  }
  // Evicted blocks go to the graveyard, not straight to the heap: a
  // syscall inside the currently executing block (dlclose, JIT remap) can
  // flush that very block — and in multi-threaded guests a *sibling*
  // thread may be executing any evicted block right now.
  retire(std::move(Dead));
}

void DbiEngine::onModuleLoad(Process &, const LoadedModule &LM) {
  charge(dbicost::ModuleLoadWork);
  // Tools may resolve new interposition targets during module load
  // (symbol resolution). Links installed before the resolution must not
  // be trusted afterwards, and traces elide the dispatcher probe for
  // their internal constituents, so traces stitched before the
  // resolution must not survive it either.
  std::vector<std::unique_ptr<CacheBlock>> Dead;
  {
    std::unique_lock<std::shared_mutex> Lock(CacheMtx);
    for (auto &T : Traces)
      Dead.push_back(std::move(T.second));
    Traces.clear();
    invalidateLinksLocked();
  }
  retire(std::move(Dead));
  Tool.onModuleLoad(*this, LM);
}

void DbiEngine::onModuleUnload(Process &, const LoadedModule &LM) {
  // Translated blocks of the vanishing module must not outlive it.
  flushRange(LM.LoadBase, LM.LoadEnd - LM.LoadBase);
  Tool.onModuleUnload(*this, LM);
}

void DbiEngine::onCodeMapped(Process &, uint64_t Addr, uint64_t Len) {
  flushRange(Addr, Len);
  Tool.onCodeMapped(*this, Addr, Len);
}

CacheBlock *DbiEngine::buildBlockLocked(uint64_t PC, ThreadContext &TC) {
  // Translation (cache-miss) granularity: never on the block re-dispatch
  // path, so an armed trace does not perturb steady-state execution.
  JZ_TRACE_SPAN("dispatch.buildBlock");
  auto Block = std::make_unique<CacheBlock>();
  Block->AppStart = PC;

  // Decode the application block: up to the first terminator, or until we
  // run into the head of an already-translated block (keeps blocks small
  // and mirrors DynamoRIO's block shattering).
  std::vector<DecodedInstrRT> Instrs;
  uint64_t Cur = PC;
  while (true) {
    if (Cur != PC && Cache.count(Cur)) {
      Block->FallthroughTarget = Cur;
      break;
    }
    Instruction I;
    if (!P.fetch(Cur, I))
      break; // undecodable: executing past here faults at run time
    Instrs.push_back({I, Cur});
    if (isTerminator(I.Op))
      break;
    Cur += I.Size;
    if (Instrs.size() >= 512) { // block length bound
      Block->FallthroughTarget = Cur;
      break;
    }
  }
  if (Instrs.empty())
    return nullptr;
  Block->AppEnd = Instrs.back().Addr + Instrs.back().I.Size;

  // instrumentBlock is the one tool callback the engine serializes (the
  // exclusive cache lock is held here); everything it reads from the tool
  // may still be written by module loads, which tools must lock against.
  BlockBuilder B(*Block);
  Tool.instrumentBlock(*this, *Block, B, Instrs);
  assert(Block->AppInstrs == Instrs.size() &&
         "tool must append every application instruction");

  // Charge translation work.
  charge(Costs.TranslationPerInstr * Instrs.size());
  ++TC.Stats.BlocksBuilt;
  if (Block->StaticallySeen)
    ++TC.Stats.StaticBlocks;
  else
    ++TC.Stats.DynamicBlocks;

  CacheBlock *Ptr = Block.get();
  Cache[PC] = std::move(Block);
  return Ptr;
}

CacheBlock *DbiEngine::findBlockLocked(uint64_t Addr) {
  if (Tracing) {
    auto It = Traces.find(Addr);
    if (It != Traces.end())
      return It->second.get();
  }
  auto It = Cache.find(Addr);
  return It == Cache.end() ? nullptr : It->second.get();
}

CacheBlock *DbiEngine::lookupOrBuild(uint64_t PC, ThreadContext &TC) {
  {
    std::shared_lock<std::shared_mutex> Lock(CacheMtx);
    if (CacheBlock *B = findBlockLocked(PC))
      return B;
  }
  std::unique_lock<std::shared_mutex> Lock(CacheMtx);
  // Re-check: a sibling thread may have built the block while this one
  // upgraded from the shared probe.
  if (CacheBlock *B = findBlockLocked(PC))
    return B;
  return buildBlockLocked(PC, TC);
}

void DbiEngine::noteBlockEntered(ThreadContext &TC, CacheBlock *Block,
                                 uint64_t ExecCount) {
  if (TC.Recording) {
    // A link invalidation since recording started means constituents may
    // have been retired; the buffer cannot be trusted (multi-threaded
    // runs only — the calling thread's own invalidations abandon the
    // recording immediately).
    if (TC.RecordGen != LinkGen.load(std::memory_order_acquire)) {
      TC.Recording = false;
      TC.TraceBuf.clear();
      return;
    }
    // The recorded tail ends where it would stop being a simple path:
    // at an existing trace, at the stitch bound, or when the path
    // revisits a block already in the buffer (loop closure).
    if (Block->IsTrace || TC.TraceBuf.size() >= MaxTraceBlocks ||
        std::find(TC.TraceBuf.begin(), TC.TraceBuf.end(), Block) !=
            TC.TraceBuf.end()) {
      finishTrace(TC);
      return;
    }
    TC.TraceBuf.push_back(Block);
    return;
  }
  // Re-arm every TraceThreshold executions (not just the first crossing):
  // module load tears traces down, and their heads must be able to
  // re-trace once they get hot again.
  if (!Block->IsTrace && ExecCount % TraceThreshold == 0) {
    bool HasTrace;
    {
      std::shared_lock<std::shared_mutex> Lock(CacheMtx);
      HasTrace = Traces.count(Block->AppStart) != 0;
    }
    if (!HasTrace) {
      TC.Recording = true;
      TC.RecordGen = LinkGen.load(std::memory_order_acquire);
      TC.TraceBuf.assign(1, Block);
    }
  }
}

void DbiEngine::finishTrace(ThreadContext &TC) {
  TC.Recording = false;
  std::vector<CacheBlock *> Buf;
  Buf.swap(TC.TraceBuf);
  if (Buf.size() < 2)
    return;
  std::unique_lock<std::shared_mutex> Lock(CacheMtx);
  // A flush since recording started may have retired constituents; their
  // ops must not be stitched. (Single-threaded runs never hit this: the
  // invalidation already abandoned the recording.)
  if (TC.RecordGen != LinkGen.load(std::memory_order_relaxed))
    return;
  if (Traces.count(Buf.front()->AppStart))
    return;
  // Trace stitching is a cold path (once per hot head) — span it; the
  // steady-state link/trace follow paths are never traced.
  JZ_TRACE_SPAN("dispatch.buildTrace");
  auto T = std::make_unique<CacheBlock>();
  T->IsTrace = true;
  T->AppStart = Buf.front()->AppStart;
  T->AppEnd = Buf.front()->AppEnd;
  T->StaticallySeen = Buf.front()->StaticallySeen;
  // Ops past the last constituent's terminator fall through exactly like
  // the constituent itself would.
  T->FallthroughTarget = Buf.back()->FallthroughTarget;
  for (CacheBlock *C : Buf) {
    uint32_t Base = static_cast<uint32_t>(T->Ops.size());
    T->TraceEntries.push_back({C->AppStart, Base});
    T->AppRanges.push_back({C->AppStart, C->AppEnd});
    if (C->StaticallySeen)
      ++T->StaticConstituents;
    else
      ++T->DynamicConstituents;
    for (const CacheOp &Op : C->Ops) {
      T->Ops.push_back(Op);
      // Meta-branch skip indices are block-relative; rebase them.
      if (Op.SkipToIdx != ~0u)
        T->Ops.back().SkipToIdx = Op.SkipToIdx + Base;
    }
    T->AppInstrs += C->AppInstrs;
  }
  // Stitching copies already-translated ops — a small fraction of
  // translation cost.
  charge(T->Ops.size());
  ++TC.Stats.TracesBuilt;
  uint64_t Head = T->AppStart;
  Traces[Head] = std::move(T);
  // The trace shadows its head block: links and IBL entries resolved
  // before it existed still route to the plain block and would keep the
  // trace cold forever. Invalidate so incoming transitions re-resolve
  // (rare — once per hot head).
  invalidateLinksLocked();
}

void DbiEngine::publishTerminal(RunResult RR) {
  {
    std::lock_guard<std::mutex> Lock(ResultMtx);
    if (!FinalSet) {
      Final = std::move(RR);
      FinalSet = true;
    }
  }
  Done.store(true, std::memory_order_release);
  // Wake any dispatcher parked in a blocking wait so every host thread
  // can drain out.
  P.requestStop();
}

void DbiEngine::spawnHostThread(uint32_t Tid, Machine &TM) {
  auto C = std::make_unique<ThreadContext>();
  C->Tid = Tid;
  C->M = &TM;
  ThreadContext *Raw = C.get();
  std::lock_guard<std::mutex> Lock(CtxMtx);
  Contexts.push_back(std::move(C));
  MtActive.store(true, std::memory_order_relaxed);
  HostThreads.emplace_back([this, Raw] { runThread(*Raw); });
}

void DbiEngine::joinHostThreads() {
  // Joined threads may spawn further threads; keep draining until the
  // list is empty under the lock.
  while (true) {
    std::thread T;
    {
      std::lock_guard<std::mutex> Lock(CtxMtx);
      if (HostThreads.empty())
        break;
      T = std::move(HostThreads.back());
      HostThreads.pop_back();
    }
    T.join();
  }
}

RunResult DbiEngine::run(uint64_t MaxSteps) {
  RunBudget B;
  B.MaxSteps = MaxSteps;
  return run(B);
}

RunResult DbiEngine::run(const RunBudget &B) {
  Budget = B;
  if (Budget.MaxWallMs)
    WallDeadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(Budget.MaxWallMs);
  {
    std::lock_guard<std::mutex> Lock(ResultMtx);
    FinalSet = false;
    Final = RunResult();
  }
  Done.store(false, std::memory_order_relaxed);
  ThreadContext *MainTC = nullptr;
  {
    std::lock_guard<std::mutex> Lock(CtxMtx);
    Contexts.clear(); // no host threads are live between runs
    auto C = std::make_unique<ThreadContext>();
    C->Tid = P.M.Tid;
    C->M = &P.M;
    MainTC = C.get();
    Contexts.push_back(std::move(C));
  }
  P.setThreadSpawnFn(
      [this](uint32_t Tid, Machine &TM) { spawnHostThread(Tid, TM); });
  // Siblings already in the thread table — a checkpoint-stopped or
  // StateFile-restored process — get their dispatcher threads back before
  // the main thread resumes.
  for (auto &[Tid, TM] : P.liveSiblings())
    spawnHostThread(Tid, *TM);

  runThread(*MainTC);
  // The main guest thread is done (process-terminal event or a plain
  // thread exit); sibling guest threads keep the process alive until they
  // finish or the published terminal result drains them.
  joinHostThreads();

  RunResult RR;
  {
    std::lock_guard<std::mutex> Lock(ResultMtx);
    if (FinalSet) {
      RR = Final;
    } else {
      // Every guest thread exited individually (ThreadExit / sentinel
      // RET): mirror the native scheduler's convention.
      RR.St = RunResult::Status::Exited;
      RR.ExitCode =
          P.exitCode() ? P.exitCode() : static_cast<int>(P.M.reg(Reg::R0));
    }
  }
  RR.Cycles = P.totalCycles();
  RR.Retired = P.totalRetired();
  {
    std::lock_guard<std::mutex> Lock(CtxMtx);
    Stats = DbiStats();
    for (const auto &C : Contexts)
      Stats.add(C->Stats);
    if (JitArena)
      Stats.JitArenaBytes = JitArena->peakBytes();
  }
  // Every dispatcher is quiescent now; drain the graveyard.
  {
    std::lock_guard<std::mutex> Lock(GraveMtx);
    Graveyard.clear();
  }
  return RR;
}

void DbiEngine::runThread(ThreadContext &TC) {
  DispatcherScope Scope(TC);
  Machine &M = *TC.M;
  DbiStats &S = TC.Stats;
  uint64_t PC = M.PC;
  uint64_t Steps = 0;
  const uint64_t MaxSteps = Budget.MaxSteps;

  RunResult RR;
  auto Finish = [&](RunResult::Status St) {
    RR.St = St;
    publishTerminal(std::move(RR));
  };

  // Cycle/wall watchdogs (DESIGN.md §5h): consulted at every dispatcher
  // entry and, amortized, every 1024 application instructions — linked
  // blocks and internally looping traces bypass the dispatcher, so a
  // runaway loop must be caught on the execution path itself.
  const bool HasWatchdog = Budget.MaxCycles || Budget.MaxWallMs;
  auto WatchdogTripped = [&]() -> bool {
    if (Budget.MaxCycles && M.Cycles > Budget.MaxCycles) {
      RR.FaultMsg = formatString(
          "watchdog: cycle budget %llu exceeded (tid=%u pc=0x%llx "
          "cycles=%llu)",
          static_cast<unsigned long long>(Budget.MaxCycles), M.Tid,
          static_cast<unsigned long long>(M.PC),
          static_cast<unsigned long long>(M.Cycles));
      return true;
    }
    if (Budget.MaxWallMs && std::chrono::steady_clock::now() >= WallDeadline) {
      RR.FaultMsg = formatString(
          "watchdog: wall-clock budget %llu ms exceeded (tid=%u pc=0x%llx "
          "steps=%llu)",
          static_cast<unsigned long long>(Budget.MaxWallMs), M.Tid,
          static_cast<unsigned long long>(M.PC),
          static_cast<unsigned long long>(Steps));
      return true;
    }
    return false;
  };

  // Non-null between iterations when the previous block exited through a
  // followed link / IBL hit / trace continuation — the dispatcher (probe
  // + code-cache lookup) is bypassed entirely.
  CacheBlock *Block = nullptr;

  while (Steps < MaxSteps) {
    if (Done.load(std::memory_order_acquire))
      return; // another thread published the terminal result
    if (!Block) {
      // Cooperative checkpoint: the machine sits at a block boundary with
      // M.PC unset-but-known, so publish a resumable StepLimit stop — the
      // quiesce point StateFile::capture snapshots at.
      if (Budget.CheckpointAfterSteps &&
          Steps >= Budget.CheckpointAfterSteps) {
        M.PC = PC;
        Finish(RunResult::Status::StepLimit);
        return;
      }
      if (HasWatchdog && WatchdogTripped()) {
        Finish(RunResult::Status::Faulted);
        return;
      }
      // Tier exit (AOT runner): the dispatcher is about to transfer into
      // statically rewritten code, which must run natively. Hand control
      // back before the entry is counted or any cache state is touched —
      // new-region targets are never translated, linked or IBL-seeded.
      if (TierExit && TierExit(PC)) {
        M.PC = PC;
        Finish(RunResult::Status::TierExit);
        return;
      }
      // ---- dispatcher entry ----
      // Quiescent point: no cache pointers are held here, so retired
      // blocks every thread has let go of can be freed; then pin the
      // current epoch for the upcoming dispatch.
      TC.Epoch.store(ThreadContext::Quiescent, std::memory_order_release);
      reclaimGraveyard();
      TC.Epoch.store(GlobalEpoch.load(std::memory_order_acquire),
                     std::memory_order_seq_cst);
      ++S.DispatchEntries;
      // Tool interposition (e.g. sanitizer allocator replacing malloc).
      if (Tool.interceptTarget(*this, PC)) {
        PC = M.PC;
        continue;
      }
      Block = lookupOrBuild(PC, TC);
      if (!Block) {
        RR.FaultMsg = formatString("undecodable code at 0x%llx",
                                   static_cast<unsigned long long>(PC));
        Finish(RunResult::Status::Faulted);
        return;
      }
      // Seed the global IBL table: future indirect transfers to this
      // address can resolve without the dispatcher. Never for
      // interposition sites — those must take the probe above. The
      // exclusive lock is only taken when the entry is missing or stale
      // (first dispatch to the block).
      if (Linking && !Tool.isInterposedTarget(*this, PC)) {
        bool Seeded;
        {
          std::shared_lock<std::shared_mutex> Lock(CacheMtx);
          auto It = IblTable.find(PC);
          Seeded = It != IblTable.end() && It->second == Block;
        }
        if (!Seeded) {
          std::unique_lock<std::shared_mutex> Lock(CacheMtx);
          IblTable[PC] = Block;
        }
      }
    }
    uint64_t EC = Block->ExecCount.fetch_add(1, std::memory_order_relaxed) + 1;
    ++S.BlocksExecuted;
    if (Tracing)
      noteBlockEntered(TC, Block, EC);

    // Execute the translated ops.
    size_t OpIdx = 0;
    bool BlockDone = false;
    bool WasBlocked = false;
    uint64_t NextPC = Block->FallthroughTarget;
    uint64_t ImplicitNext = 0;
    CTIKind TransferKind = CTIKind::None;
    // Original head of the currently executing (constituent) block: equal
    // to PC for plain blocks, updated at every internal trace transition
    // so trap attribution is identical with and without traces.
    uint64_t CurHead = PC;
    // Most recent executed application instruction address (trap
    // attribution for meta traps emitted after their app instruction).
    uint64_t LastAppPC = 0;

    // ---- JIT tier (DESIGN.md §5i) ----
    // Hot blocks tier up into host stencils: one thread wins the
    // Cold->Busy CAS and compiles (outside every lock; the block's ops
    // are immutable and the arena synchronizes itself), then publishes
    // Ready or Refused. Jitted code runs the block body only; every exit
    // fills a descriptor that either returns through the interpreter's
    // terminal paths below or sets BlockDone so the shared post-loop and
    // exit-dispatch code (links, IBL, budgets) runs unchanged. The op
    // loop itself is skipped via its !BlockDone condition.
    const jit::JitCode *JC = nullptr;
    if (Jitting) {
      JC = Block->Jit.load(std::memory_order_acquire);
      if (!JC && EC >= JitThreshold &&
          Block->JitState.load(std::memory_order_acquire) ==
              CacheBlock::JitCold) {
        uint8_t Exp = CacheBlock::JitCold;
        if (Block->JitState.compare_exchange_strong(
                Exp, CacheBlock::JitBusy, std::memory_order_acq_rel)) {
          jit::CompileEnv Env{JitArena.get(), Costs.PerAppInstr};
          if (auto Code = jit::compile(*Block, Env)) {
            Block->JitOwned = std::move(Code);
            Block->Jit.store(Block->JitOwned.get(),
                             std::memory_order_release);
            Block->JitState.store(CacheBlock::JitReady,
                                  std::memory_order_release);
            ++S.JitCompiled;
            JC = Block->JitOwned.get();
          } else {
            Block->JitState.store(CacheBlock::JitRefused,
                                  std::memory_order_release);
            ++S.JitRefused;
          }
        }
      }
    }
    std::string JitFaultStore;
    if (JC) {
      ++S.JitExecs;
      jit::FrameRaw F;
      F.M = &M;
      F.Mem = &M.Mem;
      F.E = this;
      F.TC = &TC;
      F.Block = Block;
      F.DonePtr = &Done;
      F.Steps = Steps;
      F.MaxSteps = MaxSteps;
      F.CurHead = PC;
      F.NextPC = Block->FallthroughTarget;
      F.FaultStr = &JitFaultStore;
      JC->invoke(&F);
      Steps = F.Steps;
      S.TraceTransitions += F.TraceTransitions;
      CurHead = F.CurHead;
      LastAppPC = F.LastAppPC;
      switch (static_cast<jit::JitExit>(F.ExitKind)) {
      case jit::JitExit::BlockEnd:
        BlockDone = true;
        NextPC = F.NextPC;
        TransferKind = static_cast<CTIKind>(F.TransferKind);
        break;
      case jit::JitExit::Blocked:
        BlockDone = true;
        WasBlocked = true;
        NextPC = F.NextPC;
        TransferKind = CTIKind::None;
        break;
      case jit::JitExit::Exited:
        RR.ExitCode =
            P.exitCode() ? P.exitCode() : static_cast<int>(M.reg(Reg::R0));
        Finish(RunResult::Status::Exited);
        return;
      case jit::JitExit::ThreadExit:
        P.noteThreadExit(M);
        return;
      case jit::JitExit::Trapped:
        RR.TrapCode = static_cast<uint8_t>(F.TrapCode);
        RR.TrapPC = F.TrapPC;
        Finish(RunResult::Status::Trapped);
        return;
      case jit::JitExit::Faulted:
        RR.FaultMsg = F.HasFaultStr
                          ? JitFaultStore
                          : std::string(F.FaultLit ? F.FaultLit : "fault");
        Finish(RunResult::Status::Faulted);
        return;
      case jit::JitExit::StepLimit:
        Finish(RunResult::Status::StepLimit);
        return;
      case jit::JitExit::DoneStop:
        return; // another thread published the terminal result
      }
    }

    // Traces can loop internally (that is the point), so the step bound —
    // and the world-stop flag — must be checked inside the op loop; plain
    // blocks are finite.
    while (OpIdx < Block->Ops.size() && !BlockDone &&
           (!Block->IsTrace ||
            (Steps < MaxSteps && !Done.load(std::memory_order_relaxed)))) {
      CacheOp &Op = Block->Ops[OpIdx];
      switch (Op.K) {
      case CacheOp::Kind::Hook: {
        if (Op.InlineHook) {
          M.addCycles(Op.HookCost);
        } else {
          M.addCycles(Costs.CleanCallBase + Op.HookCost);
          ++S.CleanCalls;
        }
        HookAction A = Tool.onHook(*this, Op);
        if (A == HookAction::Abort) {
          {
            std::lock_guard<std::mutex> Lock(VioMtx);
            RR.TrapCode = Violations.empty() ? 0 : Violations.back().Code;
            RR.TrapPC = Violations.empty() ? CurHead : Violations.back().PC;
          }
          Finish(RunResult::Status::Trapped);
          return;
        }
        if (A == HookAction::SkipBlockRest)
          BlockDone = true;
        ++OpIdx;
        break;
      }
      case CacheOp::Kind::Meta: {
        // Meta code runs with a zero "original PC": pc-relative meta
        // operands are disallowed by construction.
        ExecResult E = M.execute(Op.I, 0);
        switch (E.K) {
        case ExecResult::Kind::Fallthrough:
          ++OpIdx;
          break;
        case ExecResult::Kind::Branch:
          // Taken meta-branch: jump within the block.
          if (Op.SkipToIdx == ~0u) {
            RR.FaultMsg = "unbound meta branch";
            Finish(RunResult::Status::Faulted);
            return;
          }
          OpIdx = Op.SkipToIdx;
          break;
        case ExecResult::Kind::Trap: {
          // Attribute the trap to the application instruction the meta
          // sequence guards: the next app op (checks are emitted before
          // their instruction), else the last executed app instruction,
          // else the block head.
          uint64_t TrapPC = 0;
          for (size_t NI = OpIdx + 1; NI < Block->Ops.size(); ++NI)
            if (Block->Ops[NI].K == CacheOp::Kind::App) {
              TrapPC = Block->Ops[NI].OrigAddr;
              break;
            }
          if (!TrapPC)
            TrapPC = LastAppPC ? LastAppPC : CurHead;
          HookAction A = Tool.onTrap(*this, E.TrapCode, TrapPC);
          if (A == HookAction::Abort) {
            RR.TrapCode = E.TrapCode;
            RR.TrapPC = TrapPC;
            Finish(RunResult::Status::Trapped);
            return;
          }
          ++OpIdx;
          break;
        }
        case ExecResult::Kind::Fault:
          RR.FaultMsg = E.FaultMsg ? E.FaultMsg : "meta fault";
          Finish(RunResult::Status::Faulted);
          return;
        default:
          RR.FaultMsg = "meta instruction attempted control transfer";
          Finish(RunResult::Status::Faulted);
          return;
        }
        break;
      }
      case CacheOp::Kind::App: {
        // The syscall handler may consult M.PC (lazy binding / module id).
        M.PC = Op.OrigAddr;
        if (Costs.PerAppInstr)
          M.addCycles(Costs.PerAppInstr);
        ExecResult E = M.execute(Op.I, Op.OrigAddr);
        ++Steps;
        LastAppPC = Op.OrigAddr;
        if ((Steps & 1023) == 0 && HasWatchdog && WatchdogTripped()) {
          Finish(RunResult::Status::Faulted);
          return;
        }
        switch (E.K) {
        case ExecResult::Kind::Fallthrough: {
          // A not-taken conditional branch at the block end continues at
          // the original fall-through address.
          ImplicitNext = Op.OrigAddr + Op.I.Size;
          if (Block->IsTrace) {
            if (isTerminator(Op.I.Op)) {
              // Not-taken Jcc inside a trace: the stitched successor is
              // the *recorded* (taken) one, so only continue when the
              // fall-through address itself heads a constituent.
              if (const uint32_t *Idx = Block->traceEntryFor(ImplicitNext)) {
                OpIdx = *Idx;
                CurHead = ImplicitNext;
                ++S.TraceTransitions;
                break;
              }
              NextPC = ImplicitNext;
              TransferKind = CTIKind::None;
              BlockDone = true;
              break;
            }
            // Cut-block boundary: the next constituent must be the block
            // the cut falls into (recording may have diverged through
            // interposition or shattering drift).
            uint32_t NI = static_cast<uint32_t>(OpIdx + 1);
            if (const uint64_t *Head = Block->traceHeadAtOp(NI)) {
              if (*Head == ImplicitNext) {
                OpIdx = NI;
                CurHead = ImplicitNext;
                ++S.TraceTransitions;
                break;
              }
              NextPC = ImplicitNext;
              TransferKind = CTIKind::None;
              BlockDone = true;
              break;
            }
          }
          ++OpIdx;
          break;
        }
        case ExecResult::Kind::Branch:
        case ExecResult::Kind::Call:
        case ExecResult::Kind::Return: {
          CTIKind K = ctiKind(Op.I.Op);
          if (Block->IsTrace &&
              (K == CTIKind::DirectJump || K == CTIKind::CondJump ||
               K == CTIKind::DirectCall)) {
            // Internal direct transfer: continue inside the superblock
            // for free. Indirect transfers always exit to the IBL path
            // so onIndirectTransfer still fires.
            if (const uint32_t *Idx = Block->traceEntryFor(E.Target)) {
              OpIdx = *Idx;
              CurHead = E.Target;
              ++S.TraceTransitions;
              break;
            }
          }
          NextPC = E.Target;
          TransferKind = K;
          BlockDone = true;
          break;
        }
        case ExecResult::Kind::Exited:
          if (E.Target == layout::ThreadExitSentinel) {
            // Only this guest thread is done; the process lives on.
            P.noteThreadExit(M);
            return;
          }
          RR.ExitCode = P.exitCode() ? P.exitCode()
                                     : static_cast<int>(M.reg(Reg::R0));
          Finish(RunResult::Status::Exited);
          return;
        case ExecResult::Kind::Blocked:
          // The blocking syscall had no side effects; park this host
          // thread and re-issue the syscall at the same original address
          // once the guest thread is runnable again.
          NextPC = Op.OrigAddr;
          TransferKind = CTIKind::None;
          BlockDone = true;
          WasBlocked = true;
          break;
        case ExecResult::Kind::Trap: {
          HookAction A = Tool.onTrap(*this, E.TrapCode, Op.OrigAddr);
          if (A == HookAction::Abort) {
            RR.TrapCode = E.TrapCode;
            RR.TrapPC = Op.OrigAddr;
            Finish(RunResult::Status::Trapped);
            return;
          }
          ++OpIdx;
          break;
        }
        case ExecResult::Kind::Fault:
          RR.FaultMsg = E.FaultMsg ? E.FaultMsg : "fault";
          Finish(RunResult::Status::Faulted);
          return;
        }
        break;
      }
      }
    }

    if (WasBlocked) {
      // Drop every cache pointer and go quiescent before sleeping — a
      // parked thread must not hold up block reclamation.
      Block = nullptr;
      PC = NextPC;
      TC.Epoch.store(ThreadContext::Quiescent, std::memory_order_release);
      if (!P.waitWhileBlocked(M)) {
        RR.FaultMsg = P.deadlockDiagnostic();
        Finish(RunResult::Status::Faulted);
        return;
      }
      if (P.stopRequested() || Done.load(std::memory_order_acquire))
        return;
      continue; // re-dispatch (re-pins the epoch at entry)
    }

    if (Done.load(std::memory_order_acquire))
      return; // stopped mid-trace by another thread's terminal event

    if (Steps >= MaxSteps && !BlockDone && OpIdx < Block->Ops.size()) {
      Finish(RunResult::Status::StepLimit); // stopped inside a trace
      return;
    }

    if (!BlockDone && NextPC == 0) {
      if (ImplicitNext) {
        // The block ended with a not-taken conditional branch (or was cut
        // at a block-length bound): continue at the fall-through address.
        NextPC = ImplicitNext;
      } else {
        // The app ran into undecodable bytes.
        RR.FaultMsg = formatString("fell off translated block at 0x%llx",
                                   static_cast<unsigned long long>(PC));
        Finish(RunResult::Status::Faulted);
        return;
      }
    }

    // ---- exit dispatch ----
    CacheBlock *Next = nullptr;
    uint64_t Gen = LinkGen.load(std::memory_order_acquire);
    switch (TransferKind) {
    case CTIKind::IndirectCall:
    case CTIKind::IndirectJump:
    case CTIKind::Return: {
      if (TC.Recording)
        finishTrace(TC); // NET traces end at indirect transfers
      // Three-level IBL: the per-thread L0 cache (multi-threaded runs
      // only, so single-threaded cycle counts match the seed engine
      // exactly), then the shared per-site inline cache, then the global
      // table. Every path still invokes onIndirectTransfer (JCFI edge
      // checks).
      bool Mt = MtActive.load(std::memory_order_relaxed);
      ThreadContext::L0Entry &E0 =
          TC.L0[(NextPC >> 3) & (ThreadContext::L0Size - 1)];
      CacheBlock *Hit = nullptr;
      if (Linking && Mt && E0.Blk && E0.Gen == Gen && E0.Target == NextPC)
        Hit = E0.Blk;
      if (!Hit && Linking) {
        for (unsigned W = 0; W < CacheBlock::IblWays; ++W) {
          const IblRec *R = Block->Ibl[W].load(std::memory_order_acquire);
          if (R && R->Gen == Gen && R->Target == NextPC) {
            Hit = R->Blk;
            if (Mt)
              E0 = {NextPC, Hit, Gen}; // promote into the private level
            break;
          }
        }
      }
      if (Hit) {
        M.addCycles(Costs.IblHit);
        ++S.IblHits;
        Tool.onIndirectTransfer(*this, TransferKind, CurHead, NextPC);
        Next = Hit;
      } else {
        M.addCycles(Costs.IndirectLookup);
        ++S.IndirectLookups;
        ++S.IblMisses;
        Tool.onIndirectTransfer(*this, TransferKind, CurHead, NextPC);
        if (Linking) {
          {
            // Read the generation under the same shared section as the
            // table so a record can never pair the *current* generation
            // with an already-retired block.
            std::shared_lock<std::shared_mutex> Lock(CacheMtx);
            Gen = LinkGen.load(std::memory_order_relaxed);
            auto It = IblTable.find(NextPC);
            if (It != IblTable.end())
              Next = It->second;
          }
          if (Next) {
            // Promote into the per-site cache (round-robin victim).
            unsigned Way = Block->IblVictim.fetch_add(
                               1, std::memory_order_relaxed) %
                           CacheBlock::IblWays;
            Block->Ibl[Way].store(makeIblRec(NextPC, Next, Gen),
                                  std::memory_order_release);
            if (Mt)
              E0 = {NextPC, Next, Gen};
          }
        }
      }
      break;
    }
    default: {
      // Direct transfer (taken jump/call) or fall-through. Follow the
      // exit link when it is current, else resolve it on this (first)
      // execution — but never to an interposition site, whose dispatcher
      // probe must keep firing.
      if (!Linking)
        break;
      std::atomic<const LinkRec *> &Slot = TransferKind == CTIKind::None
                                               ? Block->LinkFall
                                               : Block->LinkTaken;
      const LinkRec *R = Slot.load(std::memory_order_acquire);
      if (R && R->Gen == Gen && R->TargetAddr == NextPC) {
        ++S.LinksFollowed;
        Next = R->Target;
      } else {
        CacheBlock *T = nullptr;
        {
          std::shared_lock<std::shared_mutex> Lock(CacheMtx);
          Gen = LinkGen.load(std::memory_order_relaxed);
          T = findBlockLocked(NextPC);
        }
        if (T && !Tool.isInterposedTarget(*this, NextPC)) {
          Slot.store(makeLinkRec(T, NextPC, Gen), std::memory_order_release);
          Next = T;
        }
      }
      break;
    }
    }
    // A pending checkpoint must not be outrun by linked transitions,
    // which bypass the dispatcher entirely: force the next iteration
    // through the dispatcher entry, where the stop is clean.
    if (Budget.CheckpointAfterSteps && Steps >= Budget.CheckpointAfterSteps)
      Next = nullptr;
    PC = NextPC;
    Block = Next;
  }
  Finish(RunResult::Status::StepLimit);
}
