//===- jelf/Module.cpp ----------------------------------------------------==//

#include "jelf/Module.h"

#include "support/ByteReader.h"
#include "support/Endian.h"
#include "support/Error.h"
#include "support/Format.h"

using namespace janitizer;

const char *janitizer::sectionKindName(SectionKind K) {
  switch (K) {
  case SectionKind::Text: return ".text";
  case SectionKind::Plt: return ".plt";
  case SectionKind::Init: return ".init";
  case SectionKind::Fini: return ".fini";
  case SectionKind::Rodata: return ".rodata";
  case SectionKind::Data: return ".data";
  case SectionKind::Bss: return ".bss";
  case SectionKind::Got: return ".got";
  }
  JZ_UNREACHABLE("unknown section kind");
}

bool janitizer::isExecutableSection(SectionKind K) {
  switch (K) {
  case SectionKind::Text:
  case SectionKind::Plt:
  case SectionKind::Init:
  case SectionKind::Fini:
    return true;
  default:
    return false;
  }
}

const Section *Module::sectionAt(uint64_t VA) const {
  for (const Section &S : Sections)
    if (S.contains(VA))
      return &S;
  return nullptr;
}

Section *Module::sectionAt(uint64_t VA) {
  return const_cast<Section *>(static_cast<const Module *>(this)->sectionAt(VA));
}

const Section *Module::section(SectionKind K) const {
  for (const Section &S : Sections)
    if (S.Kind == K)
      return &S;
  return nullptr;
}

Section *Module::section(SectionKind K) {
  return const_cast<Section *>(static_cast<const Module *>(this)->section(K));
}

const Symbol *Module::findSymbol(const std::string &SymName) const {
  for (const Symbol &S : Symbols)
    if (S.Name == SymName)
      return &S;
  return nullptr;
}

const Symbol *Module::findExported(const std::string &SymName) const {
  for (const Symbol &S : Symbols)
    if (S.Exported && S.Name == SymName)
      return &S;
  return nullptr;
}

const Symbol *Module::functionContaining(uint64_t VA) const {
  for (const Symbol &S : Symbols)
    if (S.IsFunction && VA >= S.Value && VA < S.Value + S.Size)
      return &S;
  return nullptr;
}

uint64_t Module::codeSize() const {
  uint64_t Total = 0;
  for (const Section &S : Sections)
    if (isExecutableSection(S.Kind))
      Total += S.size();
  return Total;
}

uint64_t Module::linkEnd() const {
  uint64_t End = LinkBase;
  for (const Section &S : Sections)
    End = std::max(End, S.Addr + S.size());
  return End;
}

bool Module::isCodeAddress(uint64_t VA) const {
  const Section *S = sectionAt(VA);
  return S && isExecutableSection(S->Kind);
}

bool Module::inDataIsland(uint64_t VA) const {
  for (const DataIsland &D : Islands)
    if (VA >= D.Addr && VA < D.Addr + D.Size)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t JelfMagic = 0x464C454A; // "JELF"
constexpr uint32_t JelfVersion = 1;

void writeString(std::vector<uint8_t> &Buf, const std::string &S) {
  writeLE32(Buf, static_cast<uint32_t>(S.size()));
  Buf.insert(Buf.end(), S.begin(), S.end());
}

} // namespace

std::vector<uint8_t> Module::serialize() const {
  std::vector<uint8_t> Buf;
  writeLE32(Buf, JelfMagic);
  writeLE32(Buf, JelfVersion);
  writeString(Buf, Name);
  uint8_t Flags = (IsPIC ? 1 : 0) | (IsSharedObject ? 2 : 0) |
                  (HasEHMetadata ? 4 : 0) | (HasFullSymbols ? 8 : 0);
  Buf.push_back(Flags);
  writeLE64(Buf, LinkBase);
  writeLE64(Buf, Entry);

  writeLE32(Buf, static_cast<uint32_t>(Sections.size()));
  for (const Section &S : Sections) {
    Buf.push_back(static_cast<uint8_t>(S.Kind));
    writeLE64(Buf, S.Addr);
    writeLE64(Buf, S.BssSize);
    writeLE32(Buf, static_cast<uint32_t>(S.Bytes.size()));
    Buf.insert(Buf.end(), S.Bytes.begin(), S.Bytes.end());
  }

  writeLE32(Buf, static_cast<uint32_t>(Symbols.size()));
  for (const Symbol &S : Symbols) {
    writeString(Buf, S.Name);
    writeLE64(Buf, S.Value);
    writeLE64(Buf, S.Size);
    Buf.push_back((S.Exported ? 1 : 0) | (S.IsFunction ? 2 : 0));
  }

  writeLE32(Buf, static_cast<uint32_t>(DynRelocs.size()));
  for (const Relocation &R : DynRelocs) {
    Buf.push_back(static_cast<uint8_t>(R.Kind));
    writeLE64(Buf, R.Site);
    writeString(Buf, R.SymbolName);
    writeLE64(Buf, static_cast<uint64_t>(R.Addend));
  }

  writeLE32(Buf, static_cast<uint32_t>(Needed.size()));
  for (const std::string &N : Needed)
    writeString(Buf, N);

  writeLE32(Buf, static_cast<uint32_t>(ImportedSymbols.size()));
  for (const std::string &N : ImportedSymbols)
    writeString(Buf, N);

  writeLE32(Buf, static_cast<uint32_t>(Plt.size()));
  for (const PltEntry &P : Plt) {
    writeString(Buf, P.SymbolName);
    writeLE64(Buf, P.StubVA);
    writeLE64(Buf, P.GotSlotVA);
    writeLE64(Buf, P.LazyVA);
  }

  writeLE32(Buf, static_cast<uint32_t>(Islands.size()));
  for (const DataIsland &D : Islands) {
    writeLE64(Buf, D.Addr);
    writeLE64(Buf, D.Size);
  }
  return Buf;
}

ErrorOr<Module> Module::deserialize(const std::vector<uint8_t> &Blob) {
  ByteReader R(Blob);
  if (R.u32() != JelfMagic)
    return makeError("bad JELF magic");
  if (R.u32() != JelfVersion)
    return makeError("unsupported JELF version");
  Module M;
  M.Name = R.str();
  uint8_t Flags = R.u8();
  M.IsPIC = (Flags & 1) != 0;
  M.IsSharedObject = (Flags & 2) != 0;
  M.HasEHMetadata = (Flags & 4) != 0;
  M.HasFullSymbols = (Flags & 8) != 0;
  M.LinkBase = R.u64();
  M.Entry = R.u64();

  uint32_t NumSections = R.u32();
  for (uint32_t I = 0; R.ok() && I < NumSections; ++I) {
    Section S;
    S.Kind = static_cast<SectionKind>(R.u8());
    S.Addr = R.u64();
    S.BssSize = R.u64();
    S.Bytes = R.bytes();
    M.Sections.push_back(std::move(S));
  }

  uint32_t NumSymbols = R.u32();
  for (uint32_t I = 0; R.ok() && I < NumSymbols; ++I) {
    Symbol S;
    S.Name = R.str();
    S.Value = R.u64();
    S.Size = R.u64();
    uint8_t F = R.u8();
    S.Exported = (F & 1) != 0;
    S.IsFunction = (F & 2) != 0;
    M.Symbols.push_back(std::move(S));
  }

  uint32_t NumRelocs = R.u32();
  for (uint32_t I = 0; R.ok() && I < NumRelocs; ++I) {
    Relocation Rel;
    Rel.Kind = static_cast<RelocKind>(R.u8());
    Rel.Site = R.u64();
    Rel.SymbolName = R.str();
    Rel.Addend = static_cast<int64_t>(R.u64());
    M.DynRelocs.push_back(std::move(Rel));
  }

  uint32_t NumNeeded = R.u32();
  for (uint32_t I = 0; R.ok() && I < NumNeeded; ++I)
    M.Needed.push_back(R.str());

  uint32_t NumImports = R.u32();
  for (uint32_t I = 0; R.ok() && I < NumImports; ++I)
    M.ImportedSymbols.push_back(R.str());

  uint32_t NumPlt = R.u32();
  for (uint32_t I = 0; R.ok() && I < NumPlt; ++I) {
    PltEntry P;
    P.SymbolName = R.str();
    P.StubVA = R.u64();
    P.GotSlotVA = R.u64();
    P.LazyVA = R.u64();
    M.Plt.push_back(std::move(P));
  }

  uint32_t NumIslands = R.u32();
  for (uint32_t I = 0; R.ok() && I < NumIslands; ++I) {
    DataIsland D;
    D.Addr = R.u64();
    D.Size = R.u64();
    M.Islands.push_back(D);
  }

  if (!R.ok())
    return makeError(formatString("truncated JELF blob for '%s'", M.Name.c_str()));
  return M;
}
