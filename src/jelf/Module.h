//===- jelf/Module.h - JELF binary module format ---------------------------===//
///
/// \file
/// JELF is the project's ELF analogue: a linked binary module (executable or
/// shared object) with sections, a symbol table, dynamic relocations,
/// DT_NEEDED-style dependencies and PLT/GOT metadata. Modules may be
/// position-independent (linked at base 0, relocated by a load-time slide)
/// or position-dependent (mapped exactly at their link base).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_JELF_MODULE_H
#define JANITIZER_JELF_MODULE_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace janitizer {

/// Section classification. Executable sections (Text, Plt, Init, Fini) are
/// all subject to control-flow recovery in the static analyzer (§3.3.1).
enum class SectionKind : uint8_t {
  Text,
  Plt,
  Init,
  Fini,
  Rodata,
  Data,
  Bss,
  Got,
};

/// Returns the conventional name (".text", ".plt", ...).
const char *sectionKindName(SectionKind K);

/// True for sections that contain code.
bool isExecutableSection(SectionKind K);

struct Section {
  SectionKind Kind = SectionKind::Text;
  uint64_t Addr = 0; ///< link-time virtual address
  std::vector<uint8_t> Bytes;
  uint64_t BssSize = 0; ///< zero-fill size; Bytes is empty for Bss

  uint64_t size() const { return Kind == SectionKind::Bss ? BssSize : Bytes.size(); }
  bool contains(uint64_t VA) const { return VA >= Addr && VA < Addr + size(); }
};

struct Symbol {
  std::string Name;
  uint64_t Value = 0;   ///< link-time VA
  uint64_t Size = 0;
  bool Exported = false; ///< visible to other modules (dynamic symbol)
  bool IsFunction = false;
};

/// Dynamic (load-time) relocations, applied by the program loader.
enum class RelocKind : uint8_t {
  /// *(u64 *)Site = LoadBase + Addend  (rebase a module-local pointer).
  Rebase64,
  /// *(u64 *)Site = addressOf(Symbol) + Addend (cross-module data/function
  /// pointer, e.g. a GOT entry).
  SymAbs64,
};

struct Relocation {
  RelocKind Kind = RelocKind::Rebase64;
  uint64_t Site = 0; ///< link-time VA of the 8-byte slot to patch
  std::string SymbolName;
  int64_t Addend = 0;
};

/// One PLT entry: calls to imported function \p SymbolName go through the
/// stub at \p StubVA, which jumps through the GOT slot at \p GotSlotVA.
/// The slot initially points at the lazy-binding stub at \p LazyVA.
struct PltEntry {
  std::string SymbolName;
  uint64_t StubVA = 0;
  uint64_t GotSlotVA = 0;
  uint64_t LazyVA = 0;
};

/// A region of non-code bytes embedded in an executable section (constant
/// pools / jump tables in .text). Recorded by the assembler for ground
/// truth; *not* consumed by the static analyzer (which must discover code
/// boundaries itself), but used by tests and by the linear-sweep
/// unsoundness experiments.
struct DataIsland {
  uint64_t Addr = 0;
  uint64_t Size = 0;
};

class Module {
public:
  std::string Name;
  bool IsPIC = false;
  bool IsSharedObject = false;
  /// RetroWrite-relevant: set when the module carries C++ exception-handling
  /// metadata (static rewriting of such modules is refused, §2.1).
  bool HasEHMetadata = false;
  /// When false the module is stripped: only exported symbols are present.
  bool HasFullSymbols = true;
  uint64_t LinkBase = 0;
  uint64_t Entry = 0; ///< VA of the entry function (executables)

  std::vector<Section> Sections;
  std::vector<Symbol> Symbols;
  std::vector<Relocation> DynRelocs;
  std::vector<std::string> Needed;           ///< shared-object dependencies
  std::vector<std::string> ImportedSymbols;  ///< undefined symbols
  std::vector<PltEntry> Plt;
  std::vector<DataIsland> Islands;

  /// Returns the section containing \p VA, or nullptr.
  const Section *sectionAt(uint64_t VA) const;
  Section *sectionAt(uint64_t VA);

  /// Returns the section of kind \p K, or nullptr if absent.
  const Section *section(SectionKind K) const;
  Section *section(SectionKind K);

  /// Looks up a defined symbol by name.
  const Symbol *findSymbol(const std::string &Name) const;

  /// Looks up an exported symbol by name.
  const Symbol *findExported(const std::string &Name) const;

  /// Finds the defined function symbol whose [Value, Value+Size) covers
  /// \p VA, or nullptr.
  const Symbol *functionContaining(uint64_t VA) const;

  /// Total bytes of executable sections.
  uint64_t codeSize() const;

  /// Highest link-time VA used by any section (exclusive).
  uint64_t linkEnd() const;

  /// True if \p VA lies in an executable section.
  bool isCodeAddress(uint64_t VA) const;

  /// True if \p VA lies inside a recorded data island.
  bool inDataIsland(uint64_t VA) const;

  /// Serializes the module to a byte blob.
  std::vector<uint8_t> serialize() const;

  /// Parses a module from a serialized blob.
  static ErrorOr<Module> deserialize(const std::vector<uint8_t> &Blob);
};

} // namespace janitizer

#endif // JANITIZER_JELF_MODULE_H
