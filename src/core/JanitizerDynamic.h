//===- core/JanitizerDynamic.h - Janitizer's dynamic modifier -------------===//
///
/// \file
/// The run-time half of Janitizer (paper Figures 2b, 4, 5): a DbiTool that
///
///  - loads each module's rewrite-rule file when the module is mapped,
///    adjusting rule addresses by the module's load slide and keeping one
///    hash table per module (so modules can be unloaded without scans);
///  - classifies every dispatched basic block as statically seen (apply
///    the rules, including no-op rules meaning "proven, leave as is") or
///    dynamically discovered (run the technique's conservative per-block
///    fallback analysis);
///  - forwards allocator interposition, traps, hooks and indirect-edge
///    notifications to the security technique plug-in.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_CORE_JANITIZERDYNAMIC_H
#define JANITIZER_CORE_JANITIZERDYNAMIC_H

#include "core/SecurityTool.h"

#include <map>

namespace janitizer {

/// Per-run coverage counters behind Figure 14.
struct CoverageStats {
  uint64_t StaticBlocks = 0;  ///< executed blocks with static rules
  uint64_t DynamicBlocks = 0; ///< executed blocks needing fallback analysis

  double dynamicFraction() const {
    uint64_t Total = StaticBlocks + DynamicBlocks;
    return Total ? static_cast<double>(DynamicBlocks) / Total : 0.0;
  }
};

class JanitizerDynamic : public DbiTool {
public:
  JanitizerDynamic(SecurityTool &Tool, const RuleStore &Rules)
      : Tool(Tool), Rules(Rules) {}

  std::string name() const override { return "janitizer:" + Tool.name(); }

  void onModuleLoad(DbiEngine &E, const LoadedModule &LM) override;
  void onCodeMapped(DbiEngine &E, uint64_t Addr, uint64_t Len) override;
  void instrumentBlock(DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
                       const std::vector<DecodedInstrRT> &Instrs) override;
  bool interceptTarget(DbiEngine &E, uint64_t Target) override;
  HookAction onHook(DbiEngine &E, const CacheOp &Op) override;
  HookAction onTrap(DbiEngine &E, uint8_t TrapCode, uint64_t PC) override;
  void onIndirectTransfer(DbiEngine &E, CTIKind Kind, uint64_t From,
                          uint64_t Target) override;

  DbiEngine &engine() {
    assert(Engine && "not attached to an engine yet");
    return *Engine;
  }
  Process &process() { return engine().process(); }
  Machine &machine() { return engine().machine(); }

  const CoverageStats &coverage() const { return Coverage; }
  SecurityTool &tool() { return Tool; }

  /// True if \p RuntimeAddr is the start of a statically inspected basic
  /// block. Exact-start matching keeps classification sound: a dynamic
  /// block entering statically inspected code anywhere other than a known
  /// block head conservatively takes the fallback path.
  bool staticallySeen(uint64_t RuntimeAddr) const;

  /// The rules attached to the instruction at \p RuntimeAddr (empty when
  /// none).
  const std::vector<RewriteRule> *rulesForInstr(uint64_t RuntimeAddr) const;

private:
  /// Per-module rule state, keyed by run-time addresses.
  struct ModuleRules {
    std::unordered_map<uint64_t, std::vector<RewriteRule>> ByInstr;
    /// Statically inspected basic-block start addresses (run-time).
    std::set<uint64_t> Inspected;
  };

  SecurityTool &Tool;
  const RuleStore &Rules;
  DbiEngine *Engine = nullptr;
  /// Keyed by module id; per-module tables mirror Figure 5.
  std::map<unsigned, ModuleRules> PerModule;
  CoverageStats Coverage;
};

/// Convenience runner: performs static analysis for the program (unless
/// \p PreAnalyzed is supplied), loads it, and runs it under Janitizer with
/// \p Tool. Returns the engine result plus coverage stats.
struct JanitizerRun {
  RunResult Result;
  CoverageStats Coverage;
  DbiStats Dbi;
  std::vector<Violation> Violations;
  std::string Output;
};

JanitizerRun runUnderJanitizer(const ModuleStore &Store,
                               const std::string &ExeName, SecurityTool &Tool,
                               const RuleStore &Rules,
                               uint64_t MaxSteps = 1ull << 32);

} // namespace janitizer

#endif // JANITIZER_CORE_JANITIZERDYNAMIC_H
