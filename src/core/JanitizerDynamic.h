//===- core/JanitizerDynamic.h - Janitizer's dynamic modifier -------------===//
///
/// \file
/// The run-time half of Janitizer (paper Figures 2b, 4, 5): a DbiTool that
///
///  - loads each module's rewrite-rule file when the module is mapped,
///    adjusting rule addresses by the module's load slide and keeping one
///    hash table per module (so modules can be unloaded without scans);
///  - resolves a dispatched address to its owning module with one binary
///    search over a sorted vector of module load ranges, then answers the
///    block/instruction query with a single probe of that module's hash
///    table — classification cost is independent of how many modules are
///    loaded;
///  - classifies every dispatched basic block as statically seen (apply
///    the rules, including no-op rules meaning "proven, leave as is") or
///    dynamically discovered (run the technique's conservative per-block
///    fallback analysis);
///  - drops a module's table and load range on unload (dlclose), so stale
///    rules can never match newly mapped code;
///  - forwards allocator interposition, traps, hooks and indirect-edge
///    notifications to the security technique plug-in.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_CORE_JANITIZERDYNAMIC_H
#define JANITIZER_CORE_JANITIZERDYNAMIC_H

#include "core/Degradation.h"
#include "core/SecurityTool.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace janitizer {

/// Per-run coverage counters behind Figure 14, plus the rule-dispatch
/// observability counters of the module-indexed lookup path.
struct CoverageStats {
  uint64_t StaticBlocks = 0;  ///< executed blocks with static rules
  uint64_t DynamicBlocks = 0; ///< executed blocks needing fallback analysis

  // --- dispatch observability ---------------------------------------------
  /// Total block/instruction classification queries answered by the
  /// module-indexed dispatch structure.
  uint64_t RuleLookups = 0;
  /// Queries resolved by some module's rule table.
  uint64_t RuleHits = 0;
  /// Block-classification queries that missed every table (the block takes
  /// the dynamic fallback path).
  uint64_t RuleFallbacks = 0;

  /// Rule-table size of one currently loaded module.
  struct ModuleRuleInfo {
    unsigned Id = 0;
    std::string Name;
    uint64_t Blocks = 0; ///< statically inspected block heads
    uint64_t Rules = 0;  ///< total rules (including no-ops)
    /// Quarantined / partial-coverage marker (DESIGN.md §5c): the module's
    /// rules were missing, rejected at load, or flagged degraded by the
    /// static side; uncovered blocks take the dynamic fallback path.
    bool Degraded = false;
    std::string DegradeCause;
  };
  /// Per-module rule counts for every module that has (or should have had)
  /// a rule table, in load order. Unloaded modules are removed.
  std::vector<ModuleRuleInfo> Modules;

  /// Run-wide record of every module quarantined or degraded at load time,
  /// including degradations inherited from the static side via
  /// RuleFile::Degraded. Printed by `jz-bench --degradation`.
  DegradationReport Degradation;

  double dynamicFraction() const {
    uint64_t Total = StaticBlocks + DynamicBlocks;
    return Total ? static_cast<double>(DynamicBlocks) / Total : 0.0;
  }

  /// Mirrors these counters into the process MetricsRegistry as
  /// jz.dispatch.* / jz.degradation.dynamic_events (set semantics).
  void publishMetrics() const;
};

class JanitizerDynamic : public DbiTool {
public:
  JanitizerDynamic(SecurityTool &Tool, const RuleStore &Rules)
      : Tool(Tool), Rules(Rules) {}

  std::string name() const override { return "janitizer:" + Tool.name(); }

  void onModuleLoad(DbiEngine &E, const LoadedModule &LM) override;
  void onModuleUnload(DbiEngine &E, const LoadedModule &LM) override;
  void onCodeMapped(DbiEngine &E, uint64_t Addr, uint64_t Len) override;
  void instrumentBlock(DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
                       const std::vector<DecodedInstrRT> &Instrs) override;
  bool interceptTarget(DbiEngine &E, uint64_t Target) override;
  bool isInterposedTarget(DbiEngine &E, uint64_t Target) override;
  HookAction onHook(DbiEngine &E, const CacheOp &Op) override;
  HookAction onTrap(DbiEngine &E, uint8_t TrapCode, uint64_t PC) override;
  void onIndirectTransfer(DbiEngine &E, CTIKind Kind, uint64_t From,
                          uint64_t Target) override;
  /// Snapshot plumbing: the rule tables and module index rebuild from
  /// onModuleLoad replay, so only the technique's own state travels.
  std::vector<uint8_t> captureState() override { return Tool.captureState(); }
  Error restoreState(const std::vector<uint8_t> &Bytes) override {
    return Tool.restoreState(Bytes);
  }

  DbiEngine &engine() {
    DbiEngine *E = Engine.load(std::memory_order_acquire);
    assert(E && "not attached to an engine yet");
    return *E;
  }
  Process &process() { return engine().process(); }
  Machine &machine() { return engine().machine(); }

  /// Snapshot of the coverage counters (copied under the coverage lock, so
  /// it is safe to call while sibling dispatcher threads are running).
  CoverageStats coverage() const {
    std::lock_guard<std::mutex> Lock(CovMtx);
    return Coverage;
  }
  SecurityTool &tool() { return Tool; }

  /// True if \p RuntimeAddr is the start of a statically inspected basic
  /// block. Exact-start matching keeps classification sound: a dynamic
  /// block entering statically inspected code anywhere other than a known
  /// block head conservatively takes the fallback path.
  bool staticallySeen(uint64_t RuntimeAddr) const;

  /// The rules attached to the instruction at \p RuntimeAddr (nullptr when
  /// none).
  const std::vector<RewriteRule> *rulesForInstr(uint64_t RuntimeAddr) const;

  /// The rule table of the module with id \p ModuleId (nullptr when the
  /// module has no rules or was unloaded). For tests and introspection.
  const RuleTable *moduleTable(unsigned ModuleId) const {
    std::lock_guard<std::mutex> Lock(IndexMtx);
    auto It = PerModule.find(ModuleId);
    return It == PerModule.end() ? nullptr : It->second.get();
  }

private:
  /// One entry of the module address-interval index: the run-time load
  /// range of a module that has a rule table, sorted by Base. Modules
  /// never overlap at run time (distinct slides), so a binary search
  /// yields at most one candidate.
  struct ModuleInterval {
    uint64_t Base = 0;
    uint64_t End = 0;
    unsigned Id = 0;
    const RuleTable *Table = nullptr;
  };

  /// One immutable snapshot of the module dispatch structure. Lookups read
  /// the current snapshot through one atomic load — no lock on the
  /// classification path, which runs concurrently from every dispatcher
  /// thread. Module load/unload (rare, serialized by the loader) builds a
  /// replacement snapshot and publishes it; superseded snapshots are kept
  /// until the tool dies so an in-flight reader can never dangle, and each
  /// snapshot pins the rule tables it points into via shared ownership.
  struct ModuleIndex {
    /// Sorted (by Base) run-time load ranges of modules with rule tables.
    std::vector<ModuleInterval> Intervals;
    /// O(1) front end over Intervals: maps each ChunkShift-granular
    /// address chunk a module covers to its index in Intervals. The
    /// loader places PIC modules at PicRegionStride (1 MiB) boundaries,
    /// so a chunk almost always belongs to exactly one module; a chunk
    /// straddled by two modules maps to AmbiguousChunk and falls back to
    /// the binary search.
    std::unordered_map<uint64_t, uint32_t> Chunks;
    /// Keeps every table referenced by Intervals alive for the snapshot's
    /// lifetime (a module unloaded after this snapshot was superseded must
    /// not free a table an old reader still probes).
    std::vector<std::shared_ptr<const RuleTable>> Keep;
  };

  /// Resolves \p Addr to the owning module's rule table (nullptr when no
  /// rule-carrying module covers the address): one hash probe of the
  /// chunk index in the common case, one binary search over the sorted
  /// intervals when two modules meet inside a chunk. Lock-free.
  const RuleTable *tableFor(uint64_t Addr) const;

  /// Removes module \p Id's table, interval and coverage entry (no-op when
  /// the id is unknown). Requires IndexMtx; caller publishes afterwards.
  void dropModuleLocked(unsigned Id);

  /// Builds a fresh ModuleIndex from PerModule/Intervals and publishes it
  /// (module load/unload is rare; the dispatch path never pays for
  /// maintenance). Requires IndexMtx.
  void publishIndexLocked();

  SecurityTool &Tool;
  const RuleStore &Rules;
  std::atomic<DbiEngine *> Engine{nullptr};
  /// Writer-side state: guards PerModule/Intervals/RetiredIndexes. Only
  /// module load/unload and introspection take it — never a lookup.
  mutable std::mutex IndexMtx;
  /// Per-module hash tables keyed by module id (Figure 5). An entry is
  /// replaced atomically when the same id reloads and dropped on unload;
  /// shared ownership with the snapshots that reference it.
  std::unordered_map<unsigned, std::shared_ptr<const RuleTable>> PerModule;
  /// Writer-side canonical interval list (sorted by Base); copied into
  /// each published snapshot.
  std::vector<ModuleInterval> Intervals;
  /// Current snapshot (null until the first rule-carrying module loads).
  std::atomic<const ModuleIndex *> Index{nullptr};
  /// Every snapshot ever published, including the current one. Grow-only:
  /// snapshots die with the tool, so lock-free readers need no reclamation
  /// protocol. Bounded by the number of module load/unload events.
  std::vector<std::unique_ptr<const ModuleIndex>> Snapshots;
  static constexpr unsigned ChunkShift = 20; ///< = log2(PicRegionStride)
  static constexpr uint32_t AmbiguousChunk = ~0u;
  /// Guards Coverage: counters are bumped from dispatcher threads (block
  /// classification) and the loader (module bookkeeping) concurrently.
  mutable std::mutex CovMtx;
  /// Mutable: the classification queries are logically const but feed the
  /// dispatch observability counters.
  mutable CoverageStats Coverage;
};

/// Convenience runner: performs static analysis for the program (unless
/// \p PreAnalyzed is supplied), loads it, and runs it under Janitizer with
/// \p Tool. Returns the engine result plus coverage stats.
struct JanitizerRun {
  RunResult Result;
  CoverageStats Coverage;
  DbiStats Dbi;
  std::vector<Violation> Violations;
  std::string Output;
  /// Copy of Coverage.Degradation, hoisted for callers that only want the
  /// failure summary.
  DegradationReport Degradation;
};

JanitizerRun runUnderJanitizer(const ModuleStore &Store,
                               const std::string &ExeName, SecurityTool &Tool,
                               const RuleStore &Rules,
                               uint64_t MaxSteps = 1ull << 32);

} // namespace janitizer

#endif // JANITIZER_CORE_JANITIZERDYNAMIC_H
