//===- core/SecurityTool.h - Custom security technique plug-in API --------===//
///
/// \file
/// A security technique in Janitizer provides two plug-in passes (§3.4.3):
///
///  - a *static* pass with full cross-block analyses available, which
///    encodes its decisions as rewrite rules; and
///  - a *dynamic fallback* pass that works one basic block at a time, for
///    code the static analyzer never saw (dynamically generated code,
///    dlopened modules without rule files, undiscovered blocks).
///
/// The rule-driven instrumentation path receives the statically computed
/// rules for the block; the fallback path receives only the block itself
/// and must be conservative.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_CORE_SECURITYTOOL_H
#define JANITIZER_CORE_SECURITYTOOL_H

#include "analysis/Canary.h"
#include "analysis/CodeScan.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "cfg/CFG.h"
#include "dbi/Dbi.h"
#include "rules/RewriteRules.h"

namespace janitizer {

/// Everything the static analyzer computed for one module, handed to the
/// tool's static pass.
struct StaticContext {
  const Module &Mod;
  const ModuleCFG &CFG;
  const LivenessInfo &Liveness;
  const LoopAnalysis &Loops;
  const CanaryAnalysis &Canaries;
  const CodeScanResult &Scan;
};

class JanitizerDynamic;

class SecurityTool {
public:
  virtual ~SecurityTool() = default;

  /// Identifies the technique; rule files carry this name.
  virtual std::string name() const = 0;

  /// Static plug-in pass: append rules for \p Ctx's module to \p Out.
  virtual void runStaticPass(const StaticContext &Ctx, RuleFile &Out) = 0;

  /// True when runStaticPass writes nothing but \p Out — no tool members,
  /// no shared databases. A pure pass may be run concurrently from
  /// several analyzer threads and its rule files may be served from the
  /// persistent rule cache; an impure pass is serialized under a mutex
  /// and always re-run (its side effects cannot be replayed from a cached
  /// rule file). Override to return false when the pass has out-of-band
  /// outputs (see JCFITool's static target-info database).
  virtual bool staticPassIsPure() const { return true; }

  /// Rule-driven instrumentation of one dynamic block. \p InstrRules maps
  /// each instruction address in the block to its rules (may be empty for
  /// instructions that need nothing).
  virtual void instrumentWithRules(
      JanitizerDynamic &D, CacheBlock &Block, BlockBuilder &B,
      const std::vector<DecodedInstrRT> &Instrs,
      const std::unordered_map<uint64_t, std::vector<RewriteRule>>
          &InstrRules) = 0;

  /// Conservative per-block fallback for statically unseen code.
  virtual void instrumentFallback(JanitizerDynamic &D, CacheBlock &Block,
                                  BlockBuilder &B,
                                  const std::vector<DecodedInstrRT> &Instrs) = 0;

  /// Module-load notification on the dynamic side (after the rule table —
  /// if any — was installed). Tools build per-module state here (CFI
  /// target tables, allocator interposition addresses, ...).
  virtual void onModuleLoad(JanitizerDynamic &D, const LoadedModule &LM) {}

  /// Module-unload notification (before the rule table is dropped). Tools
  /// tear down per-module state built in onModuleLoad here.
  virtual void onModuleUnload(JanitizerDynamic &D, const LoadedModule &LM) {}

  /// Dynamically generated code became executable.
  virtual void onCodeMapped(JanitizerDynamic &D, uint64_t Addr,
                            uint64_t Len) {}

  /// Dispatch-time interposition (e.g. the sanitizer allocator).
  virtual bool interceptTarget(JanitizerDynamic &D, uint64_t Target) {
    return false;
  }

  /// True when \p Target is an address interceptTarget may claim. The
  /// engine refuses to link or IBL-cache transfers to such targets so the
  /// interposition probe keeps firing on every visit; tools overriding
  /// interceptTarget must keep this consistent with it.
  virtual bool isInterposedTarget(JanitizerDynamic &D, uint64_t Target) {
    return false;
  }

  virtual HookAction onHook(JanitizerDynamic &D, const CacheOp &Op) {
    return HookAction::Continue;
  }

  virtual HookAction onTrap(JanitizerDynamic &D, uint8_t TrapCode,
                            uint64_t PC) {
    return HookAction::Abort;
  }

  virtual void onIndirectTransfer(JanitizerDynamic &D, CTIKind Kind,
                                  uint64_t From, uint64_t Target) {}

  /// Serializes the technique's run-relevant mutable state (allocator
  /// metadata, shadow stacks, ...) for a StateFile snapshot; the blob is
  /// handed back to a fresh tool instance via restoreState() on resume.
  /// Per-module state rebuilt by onModuleLoad replay need not be included.
  virtual std::vector<uint8_t> captureState() { return {}; }

  /// Restores a captureState() blob. A malformed blob must return an
  /// Error and leave the tool in its clean initial state — never crash.
  virtual Error restoreState(const std::vector<uint8_t> &Bytes) {
    (void)Bytes;
    return Error::success();
  }
};

} // namespace janitizer

#endif // JANITIZER_CORE_SECURITYTOOL_H
