//===- core/StaticAnalyzer.cpp --------------------------------------------==//

#include "core/StaticAnalyzer.h"

#include "rules/RuleCache.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <set>

using namespace janitizer;

RuleFile StaticAnalyzer::analyzeModule(const Module &Mod,
                                       SecurityTool &Tool) {
  // 1. Disassembly and control-flow recovery over all executable sections.
  //    The preliminary scan's code constants act as extra discovery roots,
  //    like Janus's direct-call-target function marking.
  ModuleCFG Prelim = buildCFG(Mod);
  CodeScanResult PrelimScan = scanForCodePointers(Mod, Prelim);
  CFGBuildOptions CfgOpts;
  for (uint64_t VA : PrelimScan.CodeConstants)
    CfgOpts.ExtraRoots.push_back(VA);
  // Window hits discover jump-table targets and other address-taken code.
  // A bogus hit is harmless: execution from any address decodes exactly as
  // the static pass decoded it, and run-time classification matches block
  // starts exactly.
  for (uint64_t VA : PrelimScan.WindowHits)
    CfgOpts.ExtraRoots.push_back(VA);

  // When the scan found no extra roots the final build would repeat the
  // preliminary one input-for-input; reuse the preliminary CFG (and the
  // scan, which only depends on the module and the CFG).
  bool ReusePrelim = CfgOpts.ExtraRoots.empty();
  ModuleCFG CFG = ReusePrelim ? std::move(Prelim) : buildCFG(Mod, CfgOpts);

  // 2. Generic and enhanced analyses (§3.3.2, §3.3.3).
  LivenessInfo Liveness = computeLiveness(CFG);
  LoopAnalysis Loops = analyzeLoops(CFG);
  CanaryAnalysis Canaries = analyzeCanaries(CFG);
  CodeScanResult Scan =
      ReusePrelim ? std::move(PrelimScan) : scanForCodePointers(Mod, CFG);

  // 3. Custom security pass. An impure pass (shared out-of-band outputs)
  //    is serialized; pure passes run concurrently.
  RuleFile RF;
  RF.ModuleName = Mod.Name;
  RF.ToolName = Tool.name();
  StaticContext Ctx{Mod, CFG, Liveness, Loops, Canaries, Scan};
  if (Tool.staticPassIsPure()) {
    Tool.runStaticPass(Ctx, RF);
  } else {
    std::lock_guard<std::mutex> Lock(ToolMu);
    Tool.runStaticPass(Ctx, RF);
  }

  // 4. No-op rules mark statically inspected blocks (§3.3.4). Data1 holds
  //    the block length so run-time classification covers every byte of
  //    inspected code, not just block heads. Blocks that already carry
  //    real rules are marked by those rules' BBAddr entries; adding a
  //    no-op there would only duplicate the marker.
  std::set<uint64_t> RuleBlocks;
  for (const RewriteRule &R : RF.Rules)
    RuleBlocks.insert(R.BBAddr);
  size_t NoOps = 0;
  for (const auto &[Addr, BB] : CFG.Blocks) {
    if (RuleBlocks.count(Addr))
      continue;
    RewriteRule NoOp;
    NoOp.Id = RuleId::NoOp;
    NoOp.BBAddr = Addr;
    NoOp.InstrAddr = Addr;
    NoOp.Data[0] = BB.End - BB.Start;
    RF.Rules.push_back(NoOp);
    ++NoOps;
  }

  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.ModulesAnalyzed;
    Stats.NoOpRules += NoOps;
    Stats.BlocksDiscovered += CFG.Blocks.size();
    Stats.InstructionsDecoded += CFG.instructionCount();
    Stats.RulesEmitted += RF.Rules.size();
    if (ReusePrelim)
      ++Stats.PrelimCfgReused;
  }
  return RF;
}

Error StaticAnalyzer::analyzeProgram(
    const ModuleStore &Store, const std::string &ExeName, SecurityTool &Tool,
    RuleStore &Rules, const std::vector<std::string> &SkipModules) {
  // ldd-style dependency closure (§3.3.1). The walk itself is serial and
  // cheap; it only decides *what* to analyze.
  std::vector<std::string> Work = {ExeName};
  std::set<std::string> Seen;
  std::vector<const Module *> ToAnalyze;
  while (!Work.empty()) {
    std::string Name = Work.back();
    Work.pop_back();
    if (!Seen.insert(Name).second)
      continue;
    bool Skipped = std::find(SkipModules.begin(), SkipModules.end(), Name) !=
                   SkipModules.end();
    const Module *Mod = Store.find(Name);
    if (!Mod) {
      // A skipped name may be dlopen-only and absent from the static view
      // of the filesystem; that is exactly what SkipModules models.
      if (Skipped)
        continue;
      return makeError(formatString("module '%s' not found for analysis",
                                    Name.c_str()));
    }
    // Dependencies are traversed even for skipped modules: a library
    // reachable only through a dlopened plugin is still an ordinary
    // shared object the loader will map.
    for (const std::string &Dep : Mod->Needed)
      Work.push_back(Dep);
    if (Skipped) {
      ++Stats.ModulesSkipped;
      continue;
    }
    // A library analyzed once is reused: skip if its rule file exists.
    if (!Rules.find(Name, Tool.name()))
      ToAnalyze.push_back(Mod);
  }

  // Sort by name so RuleStore insertion order, cache write order and the
  // Timings vector are deterministic regardless of traversal order or
  // thread interleaving.
  std::sort(ToAnalyze.begin(), ToAnalyze.end(),
            [](const Module *A, const Module *B) { return A->Name < B->Name; });

  // Probe the persistent cache. An impure tool pass has side effects a
  // cached rule file cannot replay, so it always re-analyzes.
  RuleCache Cache(Tool.staticPassIsPure() ? Opts.CacheDir : std::string());
  struct Slot {
    const Module *Mod = nullptr;
    RuleFile RF;
    uint64_t ContentHash = 0;
    uint64_t Micros = 0;
    bool FromCache = false;
  };
  std::vector<Slot> Slots;
  Slots.reserve(ToAnalyze.size());
  for (const Module *Mod : ToAnalyze) {
    Slot S;
    S.Mod = Mod;
    if (Cache.enabled()) {
      auto T0 = std::chrono::steady_clock::now();
      S.ContentHash = hashBytes(Mod->serialize());
      if (std::optional<RuleFile> RF = Cache.lookup(S.ContentHash,
                                                    Tool.name())) {
        S.RF = std::move(*RF);
        S.FromCache = true;
        S.Micros = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - T0)
                .count());
      }
    }
    Slots.push_back(std::move(S));
  }

  // Fan the cache misses out across the pool: modules are independent
  // (impure tool passes are serialized inside analyzeModule). The pool is
  // sized to the actual miss count — a fully warm cache spins up no
  // threads at all.
  size_t Misses = 0;
  for (const Slot &S : Slots)
    Misses += S.FromCache ? 0 : 1;
  Stats.ThreadsUsed = 1;
  if (Misses) {
    ThreadPool Pool(std::min<unsigned>(ThreadPool::resolveJobs(Opts.Jobs),
                                       static_cast<unsigned>(Misses)));
    Stats.ThreadsUsed = Pool.threadCount();
    for (Slot &S : Slots) {
      if (S.FromCache)
        continue;
      Pool.submit([this, &S, &Tool] {
        auto T0 = std::chrono::steady_clock::now();
        S.RF = analyzeModule(*S.Mod, Tool);
        S.Micros = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - T0)
                .count());
      });
    }
    Pool.wait();
  }

  // Deterministic (name-sorted) publication: rule store, cache
  // write-back, timings.
  for (Slot &S : Slots) {
    if (!S.FromCache && Cache.enabled())
      Cache.store(S.ContentHash, Tool.name(), S.RF);
    Stats.Timings.push_back({S.Mod->Name, S.Micros, S.FromCache});
    Rules.add(std::move(S.RF));
  }
  Stats.CacheHits += Cache.stats().Hits;
  Stats.CacheMisses += Cache.stats().Misses;
  Stats.CacheEvictions += Cache.stats().Evictions;
  return Error::success();
}
