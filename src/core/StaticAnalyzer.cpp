//===- core/StaticAnalyzer.cpp --------------------------------------------==//

#include "core/StaticAnalyzer.h"

#include "rules/RuleCache.h"
#include "rules/RuleClient.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>

using namespace janitizer;

namespace {

/// Tracks the per-module analysis budget (StaticAnalyzerOptions). Steps
/// are measured in decoded instructions processed per pipeline stage, so
/// the budget scales with module size rather than wall-clock noise; the
/// optional time budget catches pathological inputs where per-step cost
/// explodes (adversarial CFGs).
class AnalysisBudget {
public:
  explicit AnalysisBudget(const StaticAnalyzerOptions &Opts)
      : StepLimit(Opts.ModuleStepBudget),
        TimeLimitMicros(Opts.ModuleTimeBudgetMicros),
        Start(std::chrono::steady_clock::now()) {}

  void charge(uint64_t Steps) { Used += Steps; }

  bool exhausted() const { return overSteps(Used) || overTime(); }

  /// True when charging \p Steps more would blow the step budget — lets
  /// stages that can be elided soundly (extended root discovery) be
  /// skipped *before* their cost is paid.
  bool wouldExhaust(uint64_t Steps) const {
    return overSteps(Used + Steps) || overTime();
  }

  std::string describe() const {
    if (overSteps(Used))
      return formatString("step budget exhausted (%llu steps used, "
                          "budget %llu)",
                          static_cast<unsigned long long>(Used),
                          static_cast<unsigned long long>(StepLimit));
    return formatString("time budget exhausted (budget %llu us)",
                        static_cast<unsigned long long>(TimeLimitMicros));
  }

private:
  bool overSteps(uint64_t Steps) const { return StepLimit && Steps > StepLimit; }
  bool overTime() const {
    if (!TimeLimitMicros)
      return false;
    auto Elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - Start);
    return static_cast<uint64_t>(Elapsed.count()) > TimeLimitMicros;
  }

  uint64_t StepLimit;
  uint64_t TimeLimitMicros;
  uint64_t Used = 0;
  std::chrono::steady_clock::time_point Start;
};

/// An empty degraded rule file: every block of the module will take the
/// per-block dynamic fallback path at run time.
RuleFile degradedRuleFile(const Module &Mod, SecurityTool &Tool,
                          std::string Reason) {
  RuleFile RF;
  RF.ModuleName = Mod.Name;
  RF.ToolName = Tool.name();
  RF.Degraded = true;
  RF.DegradeReason = std::move(Reason);
  return RF;
}

} // namespace

ErrorOr<RuleFile> StaticAnalyzer::analyzeModule(const Module &Mod,
                                                SecurityTool &Tool) {
  JZ_TRACE_SPAN("static.analyzeModule",
                {{"module", Mod.Name}, {"tool", Tool.name()}});
  if (FaultInjector::shouldFail("static.analyze"))
    return makeError("injected fault: static.analyze")
        .withContext("analyzing module " + Mod.Name);

  AnalysisBudget Budget(Opts);
  if (FaultInjector::shouldFail("static.budget"))
    return degradedRuleFile(Mod, Tool,
                            "injected fault: static.budget (treated as "
                            "exhausted before CFG recovery)");

  // 1. Disassembly and control-flow recovery over all executable sections.
  //    The preliminary scan's code constants act as extra discovery roots,
  //    like Janus's direct-call-target function marking.
  ModuleCFG Prelim;
  {
    JZ_TRACE_SPAN("static.cfg", {{"module", Mod.Name}, {"phase", "prelim"}});
    Prelim = buildCFG(Mod);
  }
  Budget.charge(Prelim.instructionCount());
  if (Budget.exhausted())
    return degradedRuleFile(Mod, Tool,
                            Budget.describe() + " during CFG recovery");

  CodeScanResult PrelimScan;
  {
    JZ_TRACE_SPAN("static.codescan", {{"module", Mod.Name}});
    PrelimScan = scanForCodePointers(Mod, Prelim);
  }
  CFGBuildOptions CfgOpts;
  for (uint64_t VA : PrelimScan.CodeConstants)
    CfgOpts.ExtraRoots.push_back(VA);
  // Window hits discover jump-table targets and other address-taken code.
  // A bogus hit is harmless: execution from any address decodes exactly as
  // the static pass decoded it, and run-time classification matches block
  // starts exactly.
  for (uint64_t VA : PrelimScan.WindowHits)
    CfgOpts.ExtraRoots.push_back(VA);

  // When the scan found no extra roots the final build would repeat the
  // preliminary one input-for-input; reuse the preliminary CFG (and the
  // scan, which only depends on the module and the CFG).
  bool ReusePrelim = CfgOpts.ExtraRoots.empty();
  // Partial-coverage degradation: when the budget cannot pay for the
  // extended rebuild (roughly the preliminary cost again), analyze the
  // preliminary CFG only. Blocks reachable solely through the extra roots
  // get no rules and fall back dynamically — coverage shrinks, soundness
  // does not.
  bool TruncatedDiscovery = false;
  if (!ReusePrelim && Budget.wouldExhaust(Prelim.instructionCount())) {
    TruncatedDiscovery = true;
    ReusePrelim = true;
  }
  ModuleCFG CFG;
  if (ReusePrelim) {
    CFG = std::move(Prelim);
  } else {
    JZ_TRACE_SPAN("static.cfg", {{"module", Mod.Name}, {"phase", "extended"}});
    CFG = buildCFG(Mod, CfgOpts);
  }
  if (!TruncatedDiscovery && !CfgOpts.ExtraRoots.empty())
    Budget.charge(CFG.instructionCount());

  // 2. Generic and enhanced analyses (§3.3.2, §3.3.3). They cost about
  //    one pass over the instructions each; a budget that cannot cover
  //    them degrades the whole module (emitting no-op rules without the
  //    tool pass would claim "statically proven" for code the tool never
  //    inspected — unsound).
  if (Budget.wouldExhaust(3 * CFG.instructionCount()))
    return degradedRuleFile(Mod, Tool,
                            Budget.describe() +
                                " before the enhanced analyses");
  LivenessInfo Liveness;
  {
    JZ_TRACE_SPAN("static.liveness", {{"module", Mod.Name}});
    Liveness = computeLiveness(CFG);
  }
  LoopAnalysis Loops;
  {
    JZ_TRACE_SPAN("static.loops", {{"module", Mod.Name}});
    Loops = analyzeLoops(CFG);
  }
  CanaryAnalysis Canaries;
  {
    JZ_TRACE_SPAN("static.canaries", {{"module", Mod.Name}});
    Canaries = analyzeCanaries(CFG);
  }
  Budget.charge(3 * CFG.instructionCount());
  CodeScanResult Scan;
  if (ReusePrelim) {
    Scan = std::move(PrelimScan);
  } else {
    JZ_TRACE_SPAN("static.codescan", {{"module", Mod.Name}});
    Scan = scanForCodePointers(Mod, CFG);
  }
  if (Budget.exhausted())
    return degradedRuleFile(Mod, Tool,
                            Budget.describe() + " after the enhanced "
                                                "analyses");

  // 3. Custom security pass. An impure pass (shared out-of-band outputs)
  //    is serialized; pure passes run concurrently.
  RuleFile RF;
  RF.ModuleName = Mod.Name;
  RF.ToolName = Tool.name();
  StaticContext Ctx{Mod, CFG, Liveness, Loops, Canaries, Scan};
  if (Tool.staticPassIsPure()) {
    JZ_TRACE_SPAN("tool.staticPass",
                  {{"module", Mod.Name}, {"tool", Tool.name()}});
    Tool.runStaticPass(Ctx, RF);
  } else {
    std::lock_guard<std::mutex> Lock(ToolMu);
    JZ_TRACE_SPAN("tool.staticPass", {{"module", Mod.Name},
                                      {"tool", Tool.name()},
                                      {"serialized", "impure"}});
    Tool.runStaticPass(Ctx, RF);
  }

  // 4. No-op rules mark statically inspected blocks (§3.3.4). Data1 holds
  //    the block length so run-time classification covers every byte of
  //    inspected code, not just block heads. Blocks that already carry
  //    real rules are marked by those rules' BBAddr entries; adding a
  //    no-op there would only duplicate the marker.
  std::set<uint64_t> RuleBlocks;
  for (const RewriteRule &R : RF.Rules)
    RuleBlocks.insert(R.BBAddr);
  size_t NoOps = 0;
  for (const auto &[Addr, BB] : CFG.Blocks) {
    if (RuleBlocks.count(Addr))
      continue;
    RewriteRule NoOp;
    NoOp.Id = RuleId::NoOp;
    NoOp.BBAddr = Addr;
    NoOp.InstrAddr = Addr;
    NoOp.Data[0] = BB.End - BB.Start;
    RF.Rules.push_back(NoOp);
    ++NoOps;
  }

  if (TruncatedDiscovery) {
    RF.Degraded = true;
    RF.DegradeReason =
        Budget.describe() + "; extended root discovery skipped (partial "
                            "rules: extra-root blocks fall back dynamically)";
  }

  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.ModulesAnalyzed;
    Stats.NoOpRules += NoOps;
    Stats.BlocksDiscovered += CFG.Blocks.size();
    Stats.InstructionsDecoded += CFG.instructionCount();
    Stats.RulesEmitted += RF.Rules.size();
    if (ReusePrelim && !TruncatedDiscovery)
      ++Stats.PrelimCfgReused;
  }
  return RF;
}

StaticAnalyzer::StaticAnalyzer() = default;
StaticAnalyzer::StaticAnalyzer(StaticAnalyzerOptions Opts)
    : Opts(std::move(Opts)) {}
StaticAnalyzer::~StaticAnalyzer() = default;

std::string StaticAnalyzer::resolvedRuledSocket() const {
  if (!Opts.RuledSocket.empty())
    return Opts.RuledSocket;
  const char *Env = std::getenv("JZ_RULED_SOCKET");
  return Env ? Env : "";
}

Error StaticAnalyzer::analyzeProgram(
    const ModuleStore &Store, const std::string &ExeName, SecurityTool &Tool,
    RuleStore &Rules, const std::vector<std::string> &SkipModules) {
  JZ_TRACE_SPAN("static.analyzeProgram",
                {{"exe", ExeName}, {"tool", Tool.name()}});
  // ldd-style dependency closure (§3.3.1). The walk itself is serial and
  // cheap; it only decides *what* to analyze.
  std::vector<std::string> Work = {ExeName};
  std::set<std::string> Seen;
  std::vector<const Module *> ToAnalyze;
  while (!Work.empty()) {
    std::string Name = Work.back();
    Work.pop_back();
    if (!Seen.insert(Name).second)
      continue;
    bool Skipped = std::find(SkipModules.begin(), SkipModules.end(), Name) !=
                   SkipModules.end();
    const Module *Mod = Store.find(Name);
    if (!Mod) {
      // A skipped name may be dlopen-only and absent from the static view
      // of the filesystem; that is exactly what SkipModules models.
      if (Skipped)
        continue;
      // Fatal: without the module the closure itself is wrong — there is
      // no unit to quarantine.
      return makeError(formatString("module '%s' not found for analysis",
                                    Name.c_str()),
                       Severity::Fatal);
    }
    // Dependencies are traversed even for skipped modules: a library
    // reachable only through a dlopened plugin is still an ordinary
    // shared object the loader will map.
    for (const std::string &Dep : Mod->Needed)
      Work.push_back(Dep);
    if (Skipped) {
      ++Stats.ModulesSkipped;
      continue;
    }
    // A library analyzed once is reused: skip if its rule file exists.
    if (!Rules.find(Name, Tool.name()))
      ToAnalyze.push_back(Mod);
  }

  // Sort by name so RuleStore insertion order, cache write order and the
  // Timings vector are deterministic regardless of traversal order or
  // thread interleaving.
  std::sort(ToAnalyze.begin(), ToAnalyze.end(),
            [](const Module *A, const Module *B) { return A->Name < B->Name; });

  // Probe the persistent cache. An impure tool pass has side effects a
  // cached rule file cannot replay, so it always re-analyzes.
  RuleCache Cache(Tool.staticPassIsPure() ? Opts.CacheDir : std::string());
  struct Slot {
    const Module *Mod = nullptr;
    RuleFile RF;
    Error Err;
    uint64_t ContentHash = 0;
    uint64_t Micros = 0;
    bool FromCache = false;
    bool FromServer = false;
    /// Set by the analysis task on completion; still false after wait()
    /// means the pool dropped the task (worker failure).
    bool Done = false;
  };
  std::vector<Slot> Slots;
  Slots.reserve(ToAnalyze.size());
  for (const Module *Mod : ToAnalyze) {
    Slot S;
    S.Mod = Mod;
    if (Cache.enabled()) {
      auto T0 = std::chrono::steady_clock::now();
      S.ContentHash = hashBytes(Mod->serialize());
      if (std::optional<RuleFile> RF = Cache.lookup(S.ContentHash,
                                                    Tool.name())) {
        S.RF = std::move(*RF);
        S.FromCache = true;
        S.Done = true;
        S.Micros = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - T0)
                .count());
      }
    }
    Slots.push_back(std::move(S));
  }

  // Second cache tier: the rule daemon. One batched fetch covers every
  // slot the local cache missed; hits are also written through to the
  // local cache so the *next* cold process on this machine does not even
  // need the daemon. Impure tool passes bypass the daemon for the same
  // reason they bypass the cache. Every failure mode — no daemon,
  // timeout, protocol breach, injected ruled.* fault — leaves the missed
  // slots to ordinary local analysis.
  std::string RuledSocket = resolvedRuledSocket();
  bool UseRuled = !RuledSocket.empty() && Tool.staticPassIsPure();
  if (UseRuled) {
    JZ_TRACE_SPAN("static.ruledFetch", {{"socket", RuledSocket}});
    if (!Ruled)
      Ruled = std::make_unique<RuleClient>(
          RuleClientOptions{RuledSocket, Opts.RuledTimeoutMs});
    std::vector<size_t> Pending;
    std::vector<RuleKey> Keys;
    for (size_t I = 0; I < Slots.size(); ++I) {
      Slot &S = Slots[I];
      if (S.FromCache)
        continue;
      if (!S.ContentHash) // cache disabled: hash not computed yet
        S.ContentHash = hashBytes(S.Mod->serialize());
      Pending.push_back(I);
      Keys.push_back({S.ContentHash, Tool.name()});
    }
    if (!Pending.empty() && !Ruled->dead()) {
      auto T0 = std::chrono::steady_clock::now();
      ErrorOr<std::vector<std::optional<RuleFile>>> Served =
          Ruled->fetch(Keys);
      uint64_t FetchMicros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - T0)
              .count());
      if (Served) {
        for (size_t K = 0; K < Pending.size(); ++K) {
          std::optional<RuleFile> &RF = (*Served)[K];
          Slot &S = Slots[Pending[K]];
          // The hash is content-addressed, so a name mismatch means the
          // server state is inconsistent — treat as a miss.
          if (!RF || RF->ModuleName != S.Mod->Name)
            continue;
          S.RF = std::move(*RF);
          S.FromServer = true;
          S.Done = true;
          // Amortize the round trip across the slots it served.
          S.Micros = FetchMicros / Pending.size();
          if (Cache.enabled())
            Cache.store(S.ContentHash, Tool.name(), S.RF);
        }
      }
      // else: transport failure — Ruled marked itself dead; all pending
      // slots fall through to local analysis below.
    }
  }

  // Fan the cache misses out across the pool: modules are independent
  // (impure tool passes are serialized inside analyzeModule). The pool is
  // sized to the actual miss count — a fully warm cache spins up no
  // threads at all.
  size_t Misses = 0;
  for (const Slot &S : Slots)
    Misses += (S.FromCache || S.FromServer) ? 0 : 1;
  Stats.ThreadsUsed = 1;
  if (Misses) {
    ThreadPool Pool(std::min<unsigned>(ThreadPool::resolveJobs(Opts.Jobs),
                                       static_cast<unsigned>(Misses)));
    Stats.ThreadsUsed = Pool.threadCount();
    for (Slot &S : Slots) {
      if (S.FromCache || S.FromServer)
        continue;
      Pool.submit([this, &S, &Tool] {
        auto T0 = std::chrono::steady_clock::now();
        ErrorOr<RuleFile> R = analyzeModule(*S.Mod, Tool);
        if (R)
          S.RF = R.takeValue();
        else
          S.Err = R.takeError();
        S.Micros = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - T0)
                .count());
        S.Done = true;
      });
    }
    Pool.wait();
  }

  // Quarantine pass: demote every slot that faulted — analysis error,
  // dropped task — to a degraded empty rule file. The run continues; the
  // module's blocks take the dynamic fallback path. Only Fatal errors
  // propagate (ErrorPolicy).
  for (Slot &S : Slots) {
    if (S.FromCache || S.FromServer)
      continue;
    std::string Stage, Cause;
    if (!S.Done) {
      Stage = "analysis-pool";
      Cause = "analysis task dropped (worker failure)";
    } else if (S.Err) {
      if (ErrorPolicy::classify(S.Err) == FaultResponse::Propagate)
        return std::move(S.Err).withContext("static analysis of program '" +
                                            ExeName + "'");
      Stage = "static-analysis";
      Cause = S.Err.message();
    } else if (S.RF.Degraded) {
      Stage = "static-analysis";
      Cause = S.RF.DegradeReason;
    } else {
      continue;
    }
    if (!S.RF.Degraded)
      S.RF = degradedRuleFile(*S.Mod, Tool, Cause);
    ++Stats.ModulesDegraded;
    Stats.Degradation.add(S.Mod->Name, Stage, Cause);
  }

  // Deterministic (name-sorted) publication: rule store, cache
  // write-back, timings. Degraded files are transient and never cached
  // (RuleCache::store also refuses them).
  // Freshly analyzed, healthy rule files are published back to the
  // daemon in one batch, so the first process to analyze a module warms
  // the whole fleet. Best-effort: a publish failure is invisible to this
  // process's own pipeline.
  if (UseRuled && Ruled && !Ruled->dead()) {
    std::vector<std::pair<RuleKey, const RuleFile *>> Fresh;
    for (const Slot &S : Slots)
      if (!S.FromCache && !S.FromServer && !S.RF.Degraded)
        Fresh.push_back({{S.ContentHash, Tool.name()}, &S.RF});
    if (!Fresh.empty())
      (void)Ruled->publish(Fresh); // errors tallied in client stats
  }

  for (Slot &S : Slots) {
    if (!S.FromCache && !S.FromServer && Cache.enabled() && !S.RF.Degraded)
      Cache.store(S.ContentHash, Tool.name(), S.RF);
    Stats.Timings.push_back({S.Mod->Name, S.Micros, S.FromCache,
                             S.FromServer, S.RF.Degraded});
    Rules.add(std::move(S.RF));
  }
  Stats.CacheHits += Cache.stats().Hits;
  Stats.CacheMisses += Cache.stats().Misses;
  Stats.CacheEvictions += Cache.stats().Evictions;
  if (Ruled) {
    // The client accumulates across analyzeProgram calls; mirror, don't
    // add (same set semantics as publishMetrics).
    Stats.ServerHits = Ruled->stats().Hits;
    Stats.ServerMisses = Ruled->stats().Misses;
    Stats.ServerErrors = Ruled->stats().Errors;
    Stats.ServerPublished = Ruled->stats().Published;
  }
  Stats.publishMetrics();
  return Error::success();
}

void StaticAnalyzerStats::publishMetrics() const {
  MetricsRegistry &M = MetricsRegistry::instance();
  M.counter("jz.static.modules_analyzed").set(ModulesAnalyzed);
  M.counter("jz.static.blocks_discovered").set(BlocksDiscovered);
  M.counter("jz.static.instructions_decoded").set(InstructionsDecoded);
  M.counter("jz.static.rules_emitted").set(RulesEmitted);
  M.counter("jz.static.noop_rules").set(NoOpRules);
  M.counter("jz.static.modules_skipped").set(ModulesSkipped);
  M.counter("jz.static.modules_degraded").set(ModulesDegraded);
  M.counter("jz.static.prelim_cfg_reused").set(PrelimCfgReused);
  // jz.cache.* is maintained live by RuleCache itself (the cache is a
  // cold path) — publishing the per-analyzer tallies here too would
  // double-account the same events.
  M.gauge("jz.static.threads_used").set(ThreadsUsed);
  M.counter("jz.degradation.static_events").set(Degradation.Events.size());
  // Histogram: additive across publishes (each analyzeProgram call
  // appends its own Timings entries, so observe only the new tail).
  Histogram &H = M.histogram("jz.static.module_micros");
  for (size_t I = H.count(); I < Timings.size(); ++I)
    H.observe(Timings[I].Micros);
}
