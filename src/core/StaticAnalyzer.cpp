//===- core/StaticAnalyzer.cpp --------------------------------------------==//

#include "core/StaticAnalyzer.h"

#include "support/Format.h"

#include <algorithm>
#include <set>

using namespace janitizer;

RuleFile StaticAnalyzer::analyzeModule(const Module &Mod,
                                       SecurityTool &Tool) {
  // 1. Disassembly and control-flow recovery over all executable sections.
  //    The preliminary scan's code constants act as extra discovery roots,
  //    like Janus's direct-call-target function marking.
  ModuleCFG Prelim = buildCFG(Mod);
  CodeScanResult PrelimScan = scanForCodePointers(Mod, Prelim);
  CFGBuildOptions Opts;
  for (uint64_t VA : PrelimScan.CodeConstants)
    Opts.ExtraRoots.push_back(VA);
  // Window hits discover jump-table targets and other address-taken code.
  // A bogus hit is harmless: execution from any address decodes exactly as
  // the static pass decoded it, and run-time classification matches block
  // starts exactly.
  for (uint64_t VA : PrelimScan.WindowHits)
    Opts.ExtraRoots.push_back(VA);
  ModuleCFG CFG = buildCFG(Mod, Opts);

  // 2. Generic and enhanced analyses (§3.3.2, §3.3.3).
  LivenessInfo Liveness = computeLiveness(CFG);
  LoopAnalysis Loops = analyzeLoops(CFG);
  CanaryAnalysis Canaries = analyzeCanaries(CFG);
  CodeScanResult Scan = scanForCodePointers(Mod, CFG);

  // 3. Custom security pass.
  RuleFile RF;
  RF.ModuleName = Mod.Name;
  RF.ToolName = Tool.name();
  StaticContext Ctx{Mod, CFG, Liveness, Loops, Canaries, Scan};
  Tool.runStaticPass(Ctx, RF);

  // 4. No-op rules mark statically inspected blocks (§3.3.4). Data1 holds
  //    the block length so run-time classification covers every byte of
  //    inspected code, not just block heads.
  std::set<uint64_t> RuleBlocks;
  for (const RewriteRule &R : RF.Rules)
    RuleBlocks.insert(R.BBAddr);
  for (const auto &[Addr, BB] : CFG.Blocks) {
    RewriteRule NoOp;
    NoOp.Id = RuleId::NoOp;
    NoOp.BBAddr = Addr;
    NoOp.InstrAddr = Addr;
    NoOp.Data[0] = BB.End - BB.Start;
    RF.Rules.push_back(NoOp);
    ++Stats.NoOpRules;
  }

  ++Stats.ModulesAnalyzed;
  Stats.BlocksDiscovered += CFG.Blocks.size();
  Stats.InstructionsDecoded += CFG.instructionCount();
  Stats.RulesEmitted += RF.Rules.size();
  return RF;
}

Error StaticAnalyzer::analyzeProgram(
    const ModuleStore &Store, const std::string &ExeName, SecurityTool &Tool,
    RuleStore &Rules, const std::vector<std::string> &SkipModules) {
  // ldd-style dependency closure (§3.3.1).
  std::vector<std::string> Work = {ExeName};
  std::set<std::string> Seen;
  while (!Work.empty()) {
    std::string Name = Work.back();
    Work.pop_back();
    if (!Seen.insert(Name).second)
      continue;
    if (std::find(SkipModules.begin(), SkipModules.end(), Name) !=
        SkipModules.end())
      continue;
    const Module *Mod = Store.find(Name);
    if (!Mod)
      return makeError(formatString("module '%s' not found for analysis",
                                    Name.c_str()));
    // A library analyzed once is reused: skip if its rule file exists.
    if (!Rules.find(Name, Tool.name()))
      Rules.add(analyzeModule(*Mod, Tool));
    for (const std::string &Dep : Mod->Needed)
      Work.push_back(Dep);
  }
  return Error::success();
}
