//===- core/Degradation.h - Quarantine accounting & error policy ----------===//
///
/// \file
/// Janitizer's failure model (DESIGN.md §5c): any fault in the
/// static→rules→dynamic pipeline demotes the affected *module* to the
/// dynamic fallback path — the run continues, soundness is preserved
/// (fallback instrumentation is strictly conservative), and only coverage
/// degrades. This header holds the two small pieces every layer shares:
///
///  - ErrorPolicy: maps an Error's severity to a response. Fatal errors
///    propagate (the run is meaningless without the step); everything
///    else quarantines the unit it touched.
///  - DegradationReport: the run-wide ledger of which modules degraded,
///    at which pipeline stage, and why — surfaced by
///    `jz-bench --degradation` and asserted on by the fault-injection
///    tests, so silent coverage loss is impossible.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_CORE_DEGRADATION_H
#define JANITIZER_CORE_DEGRADATION_H

#include "support/Error.h"

#include <string>
#include <vector>

namespace janitizer {

/// What a layer should do with a failure it cannot fix locally.
enum class FaultResponse : uint8_t {
  /// Log-and-go: the operation already succeeded in a weaker form (e.g. a
  /// cache write that was not persisted).
  Ignore,
  /// Quarantine the affected module to the dynamic fallback path and
  /// continue the run.
  Degrade,
  /// Abort the surrounding operation with this error.
  Propagate,
};

/// Severity → response mapping shared by the static analyzer and the
/// dynamic modifier. Centralized so "degrade, never die" is a policy
/// decision made in one place, not ad-hoc at every call site.
struct ErrorPolicy {
  static FaultResponse classify(const Error &E) {
    if (!E)
      return FaultResponse::Ignore;
    switch (E.severity()) {
    case Severity::Warning:
      return FaultResponse::Ignore;
    case Severity::Recoverable:
      return FaultResponse::Degrade;
    case Severity::Fatal:
      return FaultResponse::Propagate;
    }
    return FaultResponse::Propagate;
  }
};

/// One quarantine decision: module + pipeline stage + human-readable cause.
struct DegradationEvent {
  std::string Module;
  /// Pipeline stage that degraded the module: "static-analysis",
  /// "analysis-pool", "rule-load", ...
  std::string Stage;
  std::string Cause;
};

/// Run-wide list of degraded modules. Empty on a healthy run.
struct DegradationReport {
  std::vector<DegradationEvent> Events;

  bool empty() const { return Events.empty(); }
  size_t size() const { return Events.size(); }

  void add(std::string Module, std::string Stage, std::string Cause) {
    Events.push_back(
        {std::move(Module), std::move(Stage), std::move(Cause)});
  }
  void merge(const DegradationReport &Other) {
    Events.insert(Events.end(), Other.Events.begin(), Other.Events.end());
  }

  /// True when \p Module appears in the report.
  bool contains(const std::string &Module) const {
    for (const DegradationEvent &E : Events)
      if (E.Module == Module)
        return true;
    return false;
  }
};

} // namespace janitizer

#endif // JANITIZER_CORE_DEGRADATION_H
