//===- core/StaticAnalyzer.h - Janitizer's static analysis pipeline -------===//
///
/// \file
/// The offline half of Janitizer (paper Figure 2a). For each module it
/// disassembles and recovers control flow over all executable sections,
/// runs the generic analyses (liveness, loops/SCEV, canaries, code-pointer
/// scanning), invokes the security technique's static plug-in pass, and
/// writes the module's rewrite-rule file. A no-op rule per basic block
/// marks statically inspected code (§3.3.4); it carries the block length
/// so the dynamic modifier can classify mid-block entries too. Blocks
/// that already carry real rules are statically seen through those rules
/// and get no additional no-op rule.
///
/// analyzeProgram() mirrors the ldd-based workflow of §3.3.1: the main
/// binary plus its whole shared-object dependency closure are analyzed,
/// each module producing its own rule file (so a library analyzed once
/// serves every executable that maps it). Modules are independent, so
/// the per-module analyses fan out across a thread pool (Jobs option);
/// rule files are byte-identical regardless of thread count. With a
/// cache directory configured, rule files persist across processes keyed
/// by (module content hash, tool name, rule-format version) — the "a
/// library is analyzed once, ever" half of the paper's practicality
/// claim (see rules/RuleCache.h).
///
/// Failure model (DESIGN.md §5c): a fault confined to one module — an
/// analysis error, an exhausted per-module step/time budget, a dropped
/// pool task — never aborts analyzeProgram. The module is demoted to a
/// *degraded* rule file (empty or partial) and recorded in the stats'
/// DegradationReport; at run time every uncovered block takes the
/// conservative per-block dynamic fallback, so soundness is preserved
/// and only coverage shrinks. Only Fatal errors (e.g. a module missing
/// from the store) propagate.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_CORE_STATICANALYZER_H
#define JANITIZER_CORE_STATICANALYZER_H

#include "core/Degradation.h"
#include "core/SecurityTool.h"
#include "vm/Process.h"

#include <memory>
#include <mutex>

namespace janitizer {

struct StaticAnalyzerOptions {
  /// Worker threads for the per-module fan-out. 1 analyzes serially on
  /// the calling thread; 0 means one worker per hardware thread.
  unsigned Jobs = 1;
  /// Directory of the persistent rule-file cache; empty disables caching.
  std::string CacheDir;
  /// Per-module step budget (measured in decoded instructions processed
  /// across the pipeline stages); 0 = unlimited. A module that exhausts
  /// it is degraded — partial rules when discovery can be truncated
  /// soundly, otherwise an empty rule file — instead of failing the run.
  uint64_t ModuleStepBudget = 0;
  /// Per-module wall-clock budget in microseconds; 0 = unlimited. Same
  /// degradation semantics as the step budget.
  uint64_t ModuleTimeBudgetMicros = 0;
  /// Unix-socket path of a rule daemon (jz-ruled) to consult between the
  /// local cache and local analysis. Empty falls back to the
  /// JZ_RULED_SOCKET environment variable; when neither is set the tier
  /// is disabled. The daemon is an optimization only: absent, dead or
  /// misbehaving daemons degrade to local analysis, never fail the call.
  std::string RuledSocket;
  /// Send/receive timeout for daemon round trips.
  unsigned RuledTimeoutMs = 2000;
};

/// Wall-clock cost of producing one module's rule file.
struct ModuleAnalysisTiming {
  std::string Name;
  uint64_t Micros = 0;
  bool FromCache = false;
  /// Served by the rule daemon (fetched, not analyzed locally).
  bool FromServer = false;
  bool Degraded = false;
};

struct StaticAnalyzerStats {
  size_t ModulesAnalyzed = 0;
  size_t BlocksDiscovered = 0;
  size_t InstructionsDecoded = 0;
  size_t RulesEmitted = 0;
  size_t NoOpRules = 0;
  /// Modules named in SkipModules that the closure walk encountered (their
  /// dependencies are still traversed; only their own analysis is elided).
  size_t ModulesSkipped = 0;
  /// Modules demoted to a degraded (empty or partial) rule file by a
  /// fault or budget exhaustion; causes in Degradation.
  size_t ModulesDegraded = 0;
  /// Modules whose code-pointer scan found no extra roots, letting the
  /// preliminary CFG serve as the final one (no second buildCFG).
  size_t PrelimCfgReused = 0;
  // Rule-cache counters (all zero when no cache directory is configured).
  size_t CacheHits = 0;
  size_t CacheMisses = 0;
  size_t CacheEvictions = 0;
  // Rule-daemon client counters (all zero when no daemon is configured).
  size_t ServerHits = 0;
  size_t ServerMisses = 0;
  size_t ServerErrors = 0;
  size_t ServerPublished = 0;
  /// Worker threads the last analyzeProgram call actually used.
  unsigned ThreadsUsed = 1;
  /// Per-module wall-clock timings, sorted by module name.
  std::vector<ModuleAnalysisTiming> Timings;
  /// Which modules degraded during analyzeProgram, and why.
  DegradationReport Degradation;

  /// Mirrors these stats into the process MetricsRegistry as
  /// jz.static.* / jz.cache.* metrics (set semantics: publishing twice
  /// does not double count; per-module timings feed a histogram and are
  /// additive across calls).
  void publishMetrics() const;
};

class StaticAnalyzer {
public:
  // Constructors/destructor are out of line: the RuleClient member is an
  // incomplete type here.
  StaticAnalyzer();
  explicit StaticAnalyzer(StaticAnalyzerOptions Opts);
  ~StaticAnalyzer();

  /// Analyzes one module for \p Tool; returns its rule file, which may be
  /// flagged Degraded (budget exhaustion — empty or partial coverage, see
  /// RuleFile::Degraded). An error return means the analysis itself
  /// failed (injected fault or internal error); analyzeProgram turns that
  /// into a degraded module rather than propagating. Thread-safe:
  /// analyzeProgram calls this concurrently from pool workers.
  ErrorOr<RuleFile> analyzeModule(const Module &Mod, SecurityTool &Tool);

  /// Analyzes \p ExeName and its dependency closure from \p Store; adds
  /// one rule file per module to \p Rules. Modules named in \p SkipModules
  /// are left unanalyzed (to model dlopen-only dependencies that ldd
  /// cannot see, §3.3 footnote), but their own dependency edges are still
  /// traversed — a library reachable only through a skipped module gets
  /// its rule file rather than silently falling to the dynamic fallback.
  /// Per-module faults degrade that module (stats().Degradation); only
  /// Fatal errors — a non-skipped module missing from the store — fail
  /// the call.
  Error analyzeProgram(const ModuleStore &Store, const std::string &ExeName,
                       SecurityTool &Tool, RuleStore &Rules,
                       const std::vector<std::string> &SkipModules = {});

  const StaticAnalyzerStats &stats() const { return Stats; }
  const StaticAnalyzerOptions &options() const { return Opts; }

private:
  /// The resolved daemon socket (option, then JZ_RULED_SOCKET); empty
  /// when the server tier is disabled.
  std::string resolvedRuledSocket() const;

  StaticAnalyzerOptions Opts;
  StaticAnalyzerStats Stats;
  /// Lazily connected rule-daemon client; one per analyzer so its dead
  /// flag persists across analyzeProgram calls (a crashed daemon costs
  /// one timeout per process, not one per program).
  std::unique_ptr<class RuleClient> Ruled;
  /// Guards Stats while pool workers run analyzeModule concurrently.
  std::mutex StatsMu;
  /// Serializes impure tool static passes (see
  /// SecurityTool::staticPassIsPure).
  std::mutex ToolMu;
};

} // namespace janitizer

#endif // JANITIZER_CORE_STATICANALYZER_H
