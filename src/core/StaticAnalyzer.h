//===- core/StaticAnalyzer.h - Janitizer's static analysis pipeline -------===//
///
/// \file
/// The offline half of Janitizer (paper Figure 2a). For each module it
/// disassembles and recovers control flow over all executable sections,
/// runs the generic analyses (liveness, loops/SCEV, canaries, code-pointer
/// scanning), invokes the security technique's static plug-in pass, and
/// writes the module's rewrite-rule file. A no-op rule per basic block
/// marks statically inspected code (§3.3.4); it carries the block length
/// so the dynamic modifier can classify mid-block entries too.
///
/// analyzeProgram() mirrors the ldd-based workflow of §3.3.1: the main
/// binary plus its whole shared-object dependency closure are analyzed,
/// each module producing its own rule file (so a library analyzed once
/// serves every executable that maps it).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_CORE_STATICANALYZER_H
#define JANITIZER_CORE_STATICANALYZER_H

#include "core/SecurityTool.h"
#include "vm/Process.h"

namespace janitizer {

struct StaticAnalyzerStats {
  size_t ModulesAnalyzed = 0;
  size_t BlocksDiscovered = 0;
  size_t InstructionsDecoded = 0;
  size_t RulesEmitted = 0;
  size_t NoOpRules = 0;
};

class StaticAnalyzer {
public:
  /// Analyzes one module for \p Tool; returns its rule file.
  RuleFile analyzeModule(const Module &Mod, SecurityTool &Tool);

  /// Analyzes \p ExeName and its dependency closure from \p Store; adds
  /// one rule file per module to \p Rules. Modules named in \p SkipModules
  /// are left unanalyzed (to model dlopen-only dependencies that ldd
  /// cannot see, §3.3 footnote).
  Error analyzeProgram(const ModuleStore &Store, const std::string &ExeName,
                       SecurityTool &Tool, RuleStore &Rules,
                       const std::vector<std::string> &SkipModules = {});

  const StaticAnalyzerStats &stats() const { return Stats; }

private:
  StaticAnalyzerStats Stats;
};

} // namespace janitizer

#endif // JANITIZER_CORE_STATICANALYZER_H
