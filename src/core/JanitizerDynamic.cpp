//===- core/JanitizerDynamic.cpp ------------------------------------------==//

#include "core/JanitizerDynamic.h"

using namespace janitizer;

void JanitizerDynamic::onModuleLoad(DbiEngine &E, const LoadedModule &LM) {
  Engine = &E;
  const RuleFile *RF = Rules.find(LM.Mod->Name, Tool.name());
  if (RF) {
    // Populate the module's hash tables, adjusting link-time addresses by
    // the load slide (Figure 5a). Non-PIC modules have slide zero.
    ModuleRules &MR = PerModule[LM.Id];
    for (const RewriteRule &R : RF->Rules) {
      RewriteRule Adj = R;
      Adj.BBAddr = LM.toRuntime(R.BBAddr);
      Adj.InstrAddr = LM.toRuntime(R.InstrAddr);
      if (Adj.Id != RuleId::NoOp)
        MR.ByInstr[Adj.InstrAddr].push_back(Adj);
      MR.Inspected.insert(Adj.BBAddr);
    }
  }
  Tool.onModuleLoad(*this, LM);
}

void JanitizerDynamic::onCodeMapped(DbiEngine &E, uint64_t Addr,
                                    uint64_t Len) {
  Engine = &E;
  Tool.onCodeMapped(*this, Addr, Len);
}

bool JanitizerDynamic::staticallySeen(uint64_t RuntimeAddr) const {
  for (const auto &[_, MR] : PerModule)
    if (MR.Inspected.count(RuntimeAddr))
      return true;
  return false;
}

const std::vector<RewriteRule> *
JanitizerDynamic::rulesForInstr(uint64_t RuntimeAddr) const {
  for (const auto &[_, MR] : PerModule) {
    auto It = MR.ByInstr.find(RuntimeAddr);
    if (It != MR.ByInstr.end())
      return &It->second;
  }
  return nullptr;
}

void JanitizerDynamic::instrumentBlock(DbiEngine &E, CacheBlock &Block,
                                       BlockBuilder &B,
                                       const std::vector<DecodedInstrRT> &Instrs) {
  Engine = &E;
  assert(!Instrs.empty());
  // Classify: hit in some module's inspected set -> statically seen; the
  // rules (possibly only no-ops) drive instrumentation. Miss -> dynamic
  // fallback analysis (Figure 4, steps 3a/3b).
  bool Seen = staticallySeen(Instrs.front().Addr);
  Block.StaticallySeen = Seen;
  if (Seen) {
    ++Coverage.StaticBlocks;
    std::unordered_map<uint64_t, std::vector<RewriteRule>> InstrRules;
    for (const DecodedInstrRT &DI : Instrs)
      if (const std::vector<RewriteRule> *RS = rulesForInstr(DI.Addr))
        InstrRules[DI.Addr] = *RS;
    Tool.instrumentWithRules(*this, Block, B, Instrs, InstrRules);
  } else {
    ++Coverage.DynamicBlocks;
    // The per-block dynamic analysis (§3.4.3) runs at translation time —
    // work the hybrid path did offline, once.
    E.charge(25 * Instrs.size());
    Tool.instrumentFallback(*this, Block, B, Instrs);
  }
}

bool JanitizerDynamic::interceptTarget(DbiEngine &E, uint64_t Target) {
  Engine = &E;
  return Tool.interceptTarget(*this, Target);
}

HookAction JanitizerDynamic::onHook(DbiEngine &E, const CacheOp &Op) {
  Engine = &E;
  return Tool.onHook(*this, Op);
}

HookAction JanitizerDynamic::onTrap(DbiEngine &E, uint8_t TrapCode,
                                    uint64_t PC) {
  Engine = &E;
  return Tool.onTrap(*this, TrapCode, PC);
}

void JanitizerDynamic::onIndirectTransfer(DbiEngine &E, CTIKind Kind,
                                          uint64_t From, uint64_t Target) {
  Engine = &E;
  Tool.onIndirectTransfer(*this, Kind, From, Target);
}

JanitizerRun janitizer::runUnderJanitizer(const ModuleStore &Store,
                                          const std::string &ExeName,
                                          SecurityTool &Tool,
                                          const RuleStore &Rules,
                                          uint64_t MaxSteps) {
  JanitizerRun Out;
  Process P(Store);
  JanitizerDynamic Dyn(Tool, Rules);
  DbiEngine E(P, Dyn);
  Error Err = P.loadProgram(ExeName);
  if (Err) {
    Out.Result.St = RunResult::Status::Faulted;
    Out.Result.FaultMsg = Err.message();
    return Out;
  }
  Out.Result = E.run(MaxSteps);
  Out.Coverage = Dyn.coverage();
  Out.Dbi = E.stats();
  Out.Violations = E.violations();
  Out.Output = P.output();
  return Out;
}
