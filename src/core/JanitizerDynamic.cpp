//===- core/JanitizerDynamic.cpp ------------------------------------------==//

#include "core/JanitizerDynamic.h"

#include "support/FaultInjector.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>

using namespace janitizer;

void JanitizerDynamic::publishIndexLocked() {
  auto Idx = std::make_unique<ModuleIndex>();
  Idx->Intervals = Intervals;
  for (uint32_t I = 0; I < Idx->Intervals.size(); ++I) {
    const ModuleInterval &MI = Idx->Intervals[I];
    if (MI.End <= MI.Base)
      continue;
    for (uint64_t C = MI.Base >> ChunkShift; C <= (MI.End - 1) >> ChunkShift;
         ++C) {
      auto [It, New] = Idx->Chunks.emplace(C, I);
      if (!New)
        It->second = AmbiguousChunk;
    }
  }
  for (const auto &[_, Tbl] : PerModule)
    Idx->Keep.push_back(Tbl);
  const ModuleIndex *Raw = Idx.get();
  Snapshots.push_back(std::move(Idx));
  Index.store(Raw, std::memory_order_release);
}

void JanitizerDynamic::dropModuleLocked(unsigned Id) {
  PerModule.erase(Id);
  Intervals.erase(std::remove_if(Intervals.begin(), Intervals.end(),
                                 [Id](const ModuleInterval &MI) {
                                   return MI.Id == Id;
                                 }),
                  Intervals.end());
  std::lock_guard<std::mutex> Lock(CovMtx);
  Coverage.Modules.erase(
      std::remove_if(Coverage.Modules.begin(), Coverage.Modules.end(),
                     [Id](const CoverageStats::ModuleRuleInfo &MI) {
                       return MI.Id == Id;
                     }),
      Coverage.Modules.end());
}

void JanitizerDynamic::onModuleLoad(DbiEngine &E, const LoadedModule &LM) {
  JZ_TRACE_SPAN("dispatch.moduleLoad", {{"module", LM.Mod->Name}});
  Engine.store(&E, std::memory_order_release);
  std::lock_guard<std::mutex> IdxLock(IndexMtx);
  // Replace any previous state for this module id atomically: re-loading
  // must never duplicate rules or leave a stale interval behind.
  dropModuleLocked(LM.Id);
  if (const RuleFile *RF = Rules.find(LM.Mod->Name, Tool.name())) {
    // Quarantine gate (DESIGN.md §5c): rules come from a separate process
    // or a cache, so they are re-validated before a table is built. A
    // validation failure (or an injected load fault) means the rules
    // cannot be trusted — the module gets no table, every one of its
    // blocks takes the conservative dynamic fallback, and the run-wide
    // DegradationReport names the module. The run itself continues.
    std::string Quarantine;
    if (FaultInjector::shouldFail("dynamic.moduleload"))
      Quarantine = "injected fault: dynamic.moduleload";
    else if (Error Err = RF->validateForLoad(LM.Mod->Name, Tool.name()))
      Quarantine = Err.message();
    if (!Quarantine.empty()) {
      CoverageStats::ModuleRuleInfo Info;
      Info.Id = LM.Id;
      Info.Name = LM.Mod->Name;
      Info.Degraded = true;
      Info.DegradeCause = Quarantine;
      std::lock_guard<std::mutex> Lock(CovMtx);
      Coverage.Modules.push_back(std::move(Info));
      Coverage.Degradation.add(LM.Mod->Name, "module-load", Quarantine);
    } else {
      // The table adjusts link-time addresses by the load slide (Figure
      // 5a). Non-PIC modules have slide zero. A statically degraded file
      // still installs its (partial, possibly empty) table: the rules it
      // does carry are sound, and uncovered blocks fall back dynamically.
      auto Tbl = std::make_shared<const RuleTable>(*RF, LM.Slide);
      auto [TblIt, Inserted] = PerModule.insert_or_assign(LM.Id, Tbl);
      (void)TblIt;
      (void)Inserted;
      ModuleInterval MI;
      MI.Base = LM.LoadBase;
      MI.End = LM.LoadEnd;
      MI.Id = LM.Id;
      MI.Table = Tbl.get();
      Intervals.insert(std::upper_bound(Intervals.begin(), Intervals.end(), MI,
                                        [](const ModuleInterval &A,
                                           const ModuleInterval &B) {
                                          return A.Base < B.Base;
                                        }),
                       MI);
      publishIndexLocked();
      CoverageStats::ModuleRuleInfo Info;
      Info.Id = LM.Id;
      Info.Name = LM.Mod->Name;
      Info.Blocks = Tbl->blockCount();
      Info.Rules = Tbl->ruleCount();
      std::lock_guard<std::mutex> Lock(CovMtx);
      if (RF->Degraded) {
        Info.Degraded = true;
        Info.DegradeCause = RF->DegradeReason;
        Coverage.Degradation.add(LM.Mod->Name, "static-analysis",
                                 RF->DegradeReason);
      }
      Coverage.Modules.push_back(std::move(Info));
    }
  }
  Tool.onModuleLoad(*this, LM);
}

void JanitizerDynamic::onModuleUnload(DbiEngine &E, const LoadedModule &LM) {
  Engine.store(&E, std::memory_order_release);
  // The tool tears down its per-module state first, while the rule table is
  // still queryable.
  Tool.onModuleUnload(*this, LM);
  std::lock_guard<std::mutex> Lock(IndexMtx);
  dropModuleLocked(LM.Id);
  publishIndexLocked();
}

void JanitizerDynamic::onCodeMapped(DbiEngine &E, uint64_t Addr,
                                    uint64_t Len) {
  Engine.store(&E, std::memory_order_release);
  Tool.onCodeMapped(*this, Addr, Len);
}

const RuleTable *JanitizerDynamic::tableFor(uint64_t Addr) const {
  // One atomic load pins the snapshot; superseded snapshots are never
  // freed (see ModuleIndex), so everything reachable from Idx stays valid
  // for the whole query even while the loader publishes a replacement.
  const ModuleIndex *Idx = Index.load(std::memory_order_acquire);
  if (!Idx)
    return nullptr;
  auto CIt = Idx->Chunks.find(Addr >> ChunkShift);
  if (CIt == Idx->Chunks.end())
    return nullptr;
  if (CIt->second != AmbiguousChunk) {
    // Common case: the chunk belongs to one module — a single range check.
    const ModuleInterval &MI = Idx->Intervals[CIt->second];
    return (Addr >= MI.Base && Addr < MI.End) ? MI.Table : nullptr;
  }
  // Two modules meet inside this chunk: binary-search the sorted ranges.
  // First interval with Base > Addr; its predecessor is the only candidate.
  auto It = std::upper_bound(Idx->Intervals.begin(), Idx->Intervals.end(),
                             Addr, [](uint64_t A, const ModuleInterval &MI) {
                               return A < MI.Base;
                             });
  if (It == Idx->Intervals.begin())
    return nullptr;
  --It;
  return Addr < It->End ? It->Table : nullptr;
}

bool JanitizerDynamic::staticallySeen(uint64_t RuntimeAddr) const {
  const RuleTable *T = tableFor(RuntimeAddr);
  bool Seen = T && T->containsBlock(RuntimeAddr);
  {
    std::lock_guard<std::mutex> Lock(CovMtx);
    ++Coverage.RuleLookups;
    if (Seen)
      ++Coverage.RuleHits;
    else
      ++Coverage.RuleFallbacks;
  }
  return Seen;
}

const std::vector<RewriteRule> *
JanitizerDynamic::rulesForInstr(uint64_t RuntimeAddr) const {
  const RuleTable *T = tableFor(RuntimeAddr);
  const std::vector<RewriteRule> *RS =
      T ? T->rulesForInstr(RuntimeAddr) : nullptr;
  {
    std::lock_guard<std::mutex> Lock(CovMtx);
    ++Coverage.RuleLookups;
    if (RS)
      ++Coverage.RuleHits;
  }
  return RS;
}

void JanitizerDynamic::instrumentBlock(DbiEngine &E, CacheBlock &Block,
                                       BlockBuilder &B,
                                       const std::vector<DecodedInstrRT> &Instrs) {
  Engine.store(&E, std::memory_order_release);
  assert(!Instrs.empty());
  // Span at block-translation granularity: each block is instrumented
  // once and then cached, so this stays off the steady-state dispatch
  // path (staticallySeen/rulesForInstr carry no spans by design).
  JZ_TRACE_SPAN_VAR(Span, "dispatch.block");
  // Classify: hit in the owning module's inspected set -> statically seen;
  // the rules (possibly only no-ops) drive instrumentation. Miss -> dynamic
  // fallback analysis (Figure 4, steps 3a/3b).
  bool Seen = staticallySeen(Instrs.front().Addr);
  Block.StaticallySeen = Seen;
  Span.arg("path", Seen ? "static" : "fallback");
  if (Seen) {
    {
      std::lock_guard<std::mutex> Lock(CovMtx);
      ++Coverage.StaticBlocks;
    }
    std::unordered_map<uint64_t, std::vector<RewriteRule>> InstrRules;
    for (const DecodedInstrRT &DI : Instrs)
      if (const std::vector<RewriteRule> *RS = rulesForInstr(DI.Addr))
        InstrRules[DI.Addr] = *RS;
    Tool.instrumentWithRules(*this, Block, B, Instrs, InstrRules);
  } else {
    {
      std::lock_guard<std::mutex> Lock(CovMtx);
      ++Coverage.DynamicBlocks;
    }
    // The per-block dynamic analysis (§3.4.3) runs at translation time —
    // work the hybrid path did offline, once.
    JZ_TRACE_SPAN("dispatch.fallback");
    E.charge(25 * Instrs.size());
    Tool.instrumentFallback(*this, Block, B, Instrs);
  }
}

bool JanitizerDynamic::interceptTarget(DbiEngine &E, uint64_t Target) {
  Engine.store(&E, std::memory_order_release);
  return Tool.interceptTarget(*this, Target);
}

bool JanitizerDynamic::isInterposedTarget(DbiEngine &E, uint64_t Target) {
  Engine.store(&E, std::memory_order_release);
  return Tool.isInterposedTarget(*this, Target);
}

HookAction JanitizerDynamic::onHook(DbiEngine &E, const CacheOp &Op) {
  Engine.store(&E, std::memory_order_release);
  return Tool.onHook(*this, Op);
}

HookAction JanitizerDynamic::onTrap(DbiEngine &E, uint8_t TrapCode,
                                    uint64_t PC) {
  Engine.store(&E, std::memory_order_release);
  return Tool.onTrap(*this, TrapCode, PC);
}

void JanitizerDynamic::onIndirectTransfer(DbiEngine &E, CTIKind Kind,
                                          uint64_t From, uint64_t Target) {
  Engine.store(&E, std::memory_order_release);
  Tool.onIndirectTransfer(*this, Kind, From, Target);
}

JanitizerRun janitizer::runUnderJanitizer(const ModuleStore &Store,
                                          const std::string &ExeName,
                                          SecurityTool &Tool,
                                          const RuleStore &Rules,
                                          uint64_t MaxSteps) {
  JanitizerRun Out;
  Process P(Store);
  JanitizerDynamic Dyn(Tool, Rules);
  DbiEngine E(P, Dyn);
  Error Err = P.loadProgram(ExeName);
  if (Err) {
    Out.Result.St = RunResult::Status::Faulted;
    Out.Result.FaultMsg = Err.message();
    return Out;
  }
  Out.Result = E.run(MaxSteps);
  Out.Coverage = Dyn.coverage();
  Out.Degradation = Out.Coverage.Degradation;
  Out.Dbi = E.stats();
  Out.Violations = E.violations();
  Out.Output = P.output();
  Out.Coverage.publishMetrics();
  Out.Dbi.publishMetrics();
  return Out;
}

void CoverageStats::publishMetrics() const {
  MetricsRegistry &M = MetricsRegistry::instance();
  M.counter("jz.dispatch.static_blocks").set(StaticBlocks);
  M.counter("jz.dispatch.dynamic_blocks").set(DynamicBlocks);
  M.counter("jz.dispatch.lookups").set(RuleLookups);
  M.counter("jz.dispatch.hits").set(RuleHits);
  M.counter("jz.dispatch.fallbacks").set(RuleFallbacks);
  M.gauge("jz.dispatch.modules").set(static_cast<int64_t>(Modules.size()));
  M.counter("jz.degradation.dynamic_events").set(Degradation.Events.size());
}
