//===- vm/Machine.h - JISA interpreter core --------------------------------===//
///
/// \file
/// Executes decoded instructions against a register file, flag state and
/// guest memory, charging deterministic cycles. The same core is used both
/// for native ("uninstrumented") execution and to run translated blocks
/// inside the dynamic binary modifier; in the latter case each application
/// instruction carries its *original* address so PC-relative operands and
/// pushed return addresses refer to original application addresses, exactly
/// as DynamoRIO translates code-cache blocks.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_VM_MACHINE_H
#define JANITIZER_VM_MACHINE_H

#include "isa/Instruction.h"
#include "vm/Memory.h"

#include <cstdint>
#include <memory>
#include <string>

namespace janitizer {

class Machine;

/// What the process should do after a syscall returns.
enum class SyscallOutcome : uint8_t {
  Continue,    ///< resume at the next instruction
  ExitProcess, ///< the whole process stops (syscall Exit)
  ExitThread,  ///< only the calling thread stops (syscall ThreadExit)
  Block,       ///< the calling thread must wait (ThreadJoin / Futex wait);
               ///< the syscall had no side effects and will be re-issued
};

/// Receives syscalls from the interpreter. The calling machine is passed
/// explicitly because one handler (the Process) serves every guest thread.
class SyscallHandler {
public:
  virtual ~SyscallHandler() = default;
  virtual SyscallOutcome handleSyscall(Machine &M, uint8_t Num) = 0;
};

/// Outcome of executing a single instruction.
struct ExecResult {
  enum class Kind : uint8_t {
    Fallthrough, ///< continue with the next instruction
    Branch,      ///< control transferred to Target (jump or taken Jcc)
    Call,        ///< control transferred to Target, return address pushed
    Return,      ///< control transferred to popped Target
    Exited,      ///< the process or thread exited; Target distinguishes:
                 ///< ThreadExitSentinel means only this thread is done
    Trap,        ///< a TRAP instruction fired; code in TrapCode
    Fault,       ///< architectural fault (bad opcode, div-by-zero)
    Blocked,     ///< a blocking syscall; re-execute this PC once runnable
  };
  Kind K = Kind::Fallthrough;
  uint64_t Target = 0;
  uint8_t TrapCode = 0;
  const char *FaultMsg = nullptr;
};

/// Deterministic cycle charges. These model relative costs only; see
/// DESIGN.md §5.
namespace cost {
constexpr uint64_t Base = 1;       ///< every instruction
constexpr uint64_t MemAccess = 1;  ///< extra per memory access
constexpr uint64_t MulDiv = 2;     ///< extra for MUL/DIV
constexpr uint64_t Syscall = 30;   ///< host service call
} // namespace cost

class Machine : public SyscallHandler {
  /// Owning handle, declared before the reference so initialization order
  /// is right. Every machine of a process shares one GuestMemory.
  std::shared_ptr<GuestMemory> MemSP;

public:
  Machine() : MemSP(std::make_shared<GuestMemory>()), Mem(*MemSP) {}
  /// Creates a machine sharing \p Shared (a sibling guest thread).
  explicit Machine(std::shared_ptr<GuestMemory> Shared)
      : MemSP(std::move(Shared)), Mem(*MemSP) {}
  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  uint64_t R[NumRegs] = {};
  bool ZF = false, SF = false, CF = false, OF = false;
  uint64_t PC = 0;
  uint64_t Cycles = 0;
  /// Instructions retired (application instructions in native mode).
  uint64_t Retired = 0;
  /// Guest thread id (0 for the initial thread).
  uint32_t Tid = 0;

  GuestMemory &Mem;

  /// The shared memory handle, for spawning sibling machines.
  const std::shared_ptr<GuestMemory> &memHandle() const { return MemSP; }

  uint64_t &reg(Reg Rg) { return R[static_cast<unsigned>(Rg)]; }
  uint64_t reg(Reg Rg) const { return R[static_cast<unsigned>(Rg)]; }

  /// Packs the flag state into a word (for PUSHF).
  uint64_t packFlags() const {
    return (ZF ? 1u : 0u) | (SF ? 2u : 0u) | (CF ? 4u : 0u) | (OF ? 8u : 0u);
  }
  void unpackFlags(uint64_t V) {
    ZF = V & 1;
    SF = V & 2;
    CF = V & 4;
    OF = V & 8;
  }

  /// Computes the effective address of \p M for an instruction whose
  /// original address is \p OrigPC and size \p Size.
  uint64_t effectiveAddr(const MemOperand &M, uint64_t OrigPC,
                         unsigned Size) const;

  /// Executes \p I as if located at original address \p OrigPC. Updates
  /// registers, flags, memory and cycle count; does NOT update PC (the
  /// execution driver owns control flow).
  ExecResult execute(const Instruction &I, uint64_t OrigPC);

  /// Pushes / pops a 64-bit value on the guest stack.
  void push64(uint64_t V);
  uint64_t pop64();

  /// Adds extra cycles (dispatch overhead, instrumentation charges, ...).
  void addCycles(uint64_t N) { Cycles += N; }

  /// The installed syscall handler (defaults to this, which exits).
  SyscallHandler *Syscalls = this;

  SyscallOutcome handleSyscall(Machine &, uint8_t) override {
    return SyscallOutcome::ExitProcess;
  }

private:
  void setFlagsLogic(uint64_t Result);
};

} // namespace janitizer

#endif // JANITIZER_VM_MACHINE_H
