//===- vm/Syscalls.h - Guest->host service numbers -------------------------===//
///
/// \file
/// Syscall numbers and address-space layout constants shared by the VM, the
/// guest runtime library and the tools.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_VM_SYSCALLS_H
#define JANITIZER_VM_SYSCALLS_H

#include <cstdint>

namespace janitizer {

enum class SyscallNum : uint8_t {
  Exit = 0,    ///< R0 = exit code
  Write = 1,   ///< R0 = ptr, R1 = len; appends to the process output
  Sbrk = 2,    ///< R0 = delta; returns old break in R0
  MapCode = 3, ///< R0 = addr, R1 = len; marks region executable (JIT)
  Dlopen = 4,  ///< R0 = name ptr; returns handle (module id + 1) or 0
  Dlsym = 5,   ///< R0 = handle, R1 = name ptr; returns address or 0
  Cycles = 6,  ///< returns the current cycle count in R0
  Resolve = 7, ///< PLT lazy binding; consumes the index pushed by the stub
  Dlclose = 8, ///< R0 = handle; returns 0 on success, ~0 on failure
  // Guest threading (DESIGN.md §5g).
  ThreadCreate = 9, ///< R0 = entry, R1 = arg; returns new tid or ~0
  ThreadJoin = 10,  ///< R0 = tid; blocks, then returns its exit value
  ThreadExit = 11,  ///< R0 = exit value; terminates the calling thread
  Futex = 12, ///< R0 = addr, R1 = op (0 wait / 1 wake), R2 = expected value
};

/// Futex operation selectors (R1 of SyscallNum::Futex).
namespace futexop {
constexpr uint64_t Wait = 0; ///< block while *addr == R2
constexpr uint64_t Wake = 1; ///< wake every waiter on addr
} // namespace futexop

/// Trap codes raised by TRAP instructions.
enum class TrapCode : uint8_t {
  Abort = 0,          ///< guest-initiated abort (e.g. __stack_chk_fail)
  AsanViolation = 1,  ///< inserted by the sanitizer instrumentation
  CfiViolation = 2,   ///< inserted by the CFI instrumentation
  BaselineViolation = 3,
  /// Planted by the AOT rewriter at unproven block heads: a per-site stub
  /// whose 8 bytes after the TRAP carry the *original* PC, so the runner
  /// can enter the DBI fallback tier exactly where static proof ran out.
  TierEnter = 4,
  /// Planted by the AOT rewriter where a tool asked for a host hook
  /// (clean-call) that cannot be inlined; the runner looks the site up in
  /// the rewrite manifest and replays the hook.
  AotCheck = 5,
  /// Raised by the native interpreter (not a TRAP instruction) when the
  /// PC lands in a Process no-exec range — the vacated original code of
  /// an AOT-rewritten module. A register-computed target that escaped
  /// static symbolization re-enters the DBI tier here instead of silently
  /// executing stale uninstrumented bytes.
  VacatedExec = 6,
};

/// Address-space layout. The whole application space stays below
/// AppSpaceEnd so the ASan-style shadow (1 byte per 8) fits at ShadowBase
/// with a displacement encodable in an int32.
namespace layout {
constexpr uint64_t NonPicBase = 0x400000;
constexpr uint64_t PicRegionBase = 0x1000000;
constexpr uint64_t PicRegionStride = 0x100000;
constexpr uint64_t StackTop = 0x7F00000;
constexpr uint64_t StackSize = 0x100000;
constexpr uint64_t HeapBase = 0x8000000;
constexpr uint64_t AppSpaceEnd = 0x10000000;
constexpr uint64_t ShadowBase = 0x20000000;
constexpr uint64_t ShadowEnd = ShadowBase + (AppSpaceEnd >> 3);
/// RET target signalling "entry function returned" (process exit).
constexpr uint64_t ExitSentinel = 0xFFFFFFFFFFFF1000ull;
/// RET target signalling "thread entry function returned" (thread exit,
/// not process exit): pushed by ThreadCreate onto each new thread's stack.
constexpr uint64_t ThreadExitSentinel = 0xFFFFFFFFFFFF2000ull;
/// Deterministic stack-canary value placed in TP at startup.
constexpr uint64_t CanaryValue = 0xC0FEE1234ABCD977ull;
} // namespace layout

/// Shadow address of an application address (ASan mapping).
inline uint64_t shadowAddr(uint64_t AppAddr) {
  return layout::ShadowBase + (AppAddr >> 3);
}

} // namespace janitizer

#endif // JANITIZER_VM_SYSCALLS_H
