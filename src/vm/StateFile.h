//===- vm/StateFile.h - Versioned, checksummed process snapshots -----------===//
///
/// \file
/// Whole-process snapshot/restore (DESIGN.md §5h, ROADMAP 3b): serializes
/// the complete execution state of a guest Process — every thread's
/// Machine (registers, flags, PC, cycle counts), the sparse guest memory
/// image (which covers the JASan shadow and the guest heap), the loaded
/// module table, loader bookkeeping (brk, PIC cursor, trampoline), plus
/// opaque per-tool state blobs (allocator chunk maps, JCFI shadow
/// stacks) — into one versioned, checksummed byte blob.
///
/// Restoring into a *fresh* Process over the same ModuleStore continues
/// execution byte-identically: output, exit code, violation tuples and
/// cycle counts all match an uninterrupted run. Code caches and decode
/// caches are deliberately NOT serialized — they are pure derived state
/// and rebuild lazily, which keeps state files small and format-stable.
///
/// Failure discipline: a state file is an optimization, never a
/// correctness dependency. readFile() validates magic, version and the
/// FNV-1a checksum before any field is parsed, evicts (unlinks) bad
/// files, and returns an ordinary Error so the supervisor degrades to a
/// cold start. Fault points `snapshot.write.enospc`,
/// `snapshot.read.truncated` and `snapshot.read.corrupt` inject the
/// corresponding failures.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_VM_STATEFILE_H
#define JANITIZER_VM_STATEFILE_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace janitizer {

class Process;

/// One tool's opaque snapshot payload, carried through the state file by
/// name so restore can hand each blob back to the matching tool.
struct ToolStateImage {
  std::string Name;
  std::vector<uint8_t> Bytes;
};

class StateFile {
public:
  static constexpr uint32_t Magic = 0x53535A4A; // "JZSS"
  static constexpr uint32_t Version = 1;

  /// Serializes \p P (and the given tool payloads) into a complete state
  /// blob, header and checksum included. The caller must have quiesced
  /// the process: no guest thread may be executing (a clean Exited /
  /// StepLimit checkpoint stop, or before the first run).
  static std::vector<uint8_t> capture(Process &P,
                                      const std::vector<ToolStateImage>
                                          &Tools = {});

  /// Rebuilds \p P — a fresh Process constructed over the same
  /// ModuleStore the snapshot was taken from — from \p Blob. Module
  /// identity is re-bound by name; a module missing from the store is an
  /// error. Tool payloads are returned through \p ToolImages (when
  /// non-null) for the caller to hand to each tool's restoreState().
  static Error restore(Process &P, const std::vector<uint8_t> &Blob,
                       std::vector<ToolStateImage> *ToolImages = nullptr);

  /// Atomically writes \p Blob to \p Path (temp file + rename). Fault
  /// point: snapshot.write.enospc.
  static Error writeFile(const std::string &Path,
                         const std::vector<uint8_t> &Blob);

  /// Reads and validates a state file. A truncated, corrupt, or
  /// wrong-version file is evicted (unlinked) and reported as an Error —
  /// never a crash, never stale state silently accepted. Fault points:
  /// snapshot.read.truncated, snapshot.read.corrupt.
  static ErrorOr<std::vector<uint8_t>> readFile(const std::string &Path);

  /// Header + checksum validation only (no field parsing); shared by
  /// readFile and restore.
  static Error validate(const std::vector<uint8_t> &Blob);
};

} // namespace janitizer

#endif // JANITIZER_VM_STATEFILE_H
