//===- vm/Process.cpp -----------------------------------------------------==//

#include "vm/Process.h"

#include "isa/Encoding.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

using namespace janitizer;

Process::Process(const ModuleStore &Store) : Store(Store) {
  if (const char *S = std::getenv("JZ_MAX_GUEST_THREADS")) {
    char *End = nullptr;
    long V = std::strtol(S, &End, 10);
    if (End != S && *End == '\0')
      MaxThreads = static_cast<unsigned>(std::clamp(V, 1L, 64L));
  }
}

const LoadedModule *Process::moduleAt(uint64_t RuntimeVA) const {
  std::shared_lock<std::shared_mutex> Lock(ModulesMtx);
  for (const LoadedModule &LM : Loaded)
    if (LM.containsRuntime(RuntimeVA))
      return &LM;
  return nullptr;
}

const LoadedModule *Process::moduleByName(const std::string &Name) const {
  std::shared_lock<std::shared_mutex> Lock(ModulesMtx);
  for (const LoadedModule &LM : Loaded)
    if (LM.Mod->Name == Name)
      return &LM;
  return nullptr;
}

const LoadedModule *Process::moduleById(unsigned Id) const {
  std::shared_lock<std::shared_mutex> Lock(ModulesMtx);
  for (const LoadedModule &LM : Loaded)
    if (LM.Id == Id)
      return &LM;
  return nullptr;
}

uint64_t Process::resolveSymbol(const std::string &Name) const {
  std::shared_lock<std::shared_mutex> Lock(ModulesMtx);
  for (const LoadedModule &LM : Loaded)
    if (const Symbol *S = LM.Mod->findExported(Name))
      return LM.toRuntime(S->Value);
  return 0;
}

uint64_t Process::hostSbrk(uint64_t Delta) {
  return Brk.fetch_add(Delta, std::memory_order_relaxed);
}

Error Process::mapAndRelocate(const std::vector<const Module *> &NewMods) {
  // Phase 1 (ModulesMtx unique): register and map the new modules. The
  // relocation phase below only reads Loaded and we are the sole mutator
  // (LoaderMtx serializes loads), so the shared lock inside resolveSymbol
  // suffices there.
  size_t FirstNew;
  {
    std::unique_lock<std::shared_mutex> Lock(ModulesMtx);
    FirstNew = Loaded.size();
    for (const Module *Mod : NewMods) {
      LoadedModule LM;
      LM.Mod = Mod;
      LM.Id = NextModuleId++;
      if (Mod->IsPIC) {
        LM.LoadBase = NextPicBase;
        uint64_t Span = Mod->linkEnd() - Mod->LinkBase;
        NextPicBase += ((Span + layout::PicRegionStride - 1) /
                        layout::PicRegionStride) *
                       layout::PicRegionStride;
      } else {
        LM.LoadBase = Mod->LinkBase;
      }
      LM.Slide = static_cast<int64_t>(LM.LoadBase) -
                 static_cast<int64_t>(Mod->LinkBase);
      LM.LoadEnd = LM.toRuntime(Mod->linkEnd());
      Loaded.push_back(LM);

      // Map sections.
      for (const Section &S : Mod->Sections) {
        uint64_t RT = LM.toRuntime(S.Addr);
        if (S.Kind == SectionKind::Bss) {
          M.Mem.fill(RT, S.BssSize, 0);
          continue;
        }
        if (!S.Bytes.empty())
          M.Mem.writeBytes(RT, S.Bytes.data(), S.Bytes.size());
        if (isExecutableSection(S.Kind))
          M.Mem.addExecRegion(RT, S.Bytes.size());
      }
    }
  }

  // Apply dynamic relocations once every new module is mapped, so
  // SymAbs64 can resolve across the whole closure.
  for (size_t Idx = FirstNew; Idx < Loaded.size(); ++Idx) {
    const LoadedModule &LM = Loaded[Idx];
    for (const Relocation &R : LM.Mod->DynRelocs) {
      uint64_t Site = LM.toRuntime(R.Site);
      switch (R.Kind) {
      case RelocKind::Rebase64:
        M.Mem.write64(Site, LM.toRuntime(static_cast<uint64_t>(R.Addend)));
        break;
      case RelocKind::SymAbs64: {
        uint64_t Target = resolveSymbol(R.SymbolName);
        if (!Target)
          return makeError(formatString(
              "unresolved symbol '%s' needed by module '%s'",
              R.SymbolName.c_str(), LM.Mod->Name.c_str()));
        M.Mem.write64(Site, Target + static_cast<uint64_t>(R.Addend));
        break;
      }
      }
    }
  }

  // Notify observers in load order.
  for (size_t Idx = FirstNew; Idx < Loaded.size(); ++Idx)
    for (ModuleObserver *O : Observers)
      O->onModuleLoad(*this, Loaded[Idx]);
  return Error::success();
}

Error Process::unloadModule(const std::string &Name) {
  std::lock_guard<std::recursive_mutex> LoadLock(LoaderMtx);
  auto It = Loaded.begin();
  for (; It != Loaded.end(); ++It)
    if (It->Mod->Name == Name)
      break;
  if (It == Loaded.end())
    return makeError(formatString("module '%s' is not loaded", Name.c_str()));
  if (!It->Mod->IsSharedObject)
    return makeError(formatString("module '%s' is not a shared object",
                                  Name.c_str()));

  // Notify while the module is still registered so observers can drop
  // per-module state (rule tables, cached blocks) keyed by it.
  for (ModuleObserver *O : Observers)
    O->onModuleUnload(*this, *It);

  // Stale decoded instructions over the module's range must not survive a
  // later mapping at the same addresses.
  {
    std::lock_guard<std::mutex> DLock(DecodeMtx);
    for (auto DIt = DecodeCache.begin(); DIt != DecodeCache.end();)
      if (DIt->first >= It->LoadBase && DIt->first < It->LoadEnd)
        DIt = DecodeCache.erase(DIt);
      else
        ++DIt;
  }

  std::unique_lock<std::shared_mutex> MLock(ModulesMtx);
  Loaded.erase(It);
  return Error::success();
}

const LoadedModule *Process::loadModule(const std::string &Name, Error &Err) {
  std::lock_guard<std::recursive_mutex> LoadLock(LoaderMtx);
  if (const LoadedModule *LM = moduleByName(Name))
    return LM;
  const Module *Mod = Store.find(Name);
  if (!Mod) {
    Err = makeError(formatString("module '%s' not found", Name.c_str()));
    return nullptr;
  }

  // Collect the not-yet-loaded dependency closure, dependencies first.
  std::vector<const Module *> Order;
  std::vector<const Module *> Stack = {Mod};
  // Post-order DFS.
  std::vector<std::pair<const Module *, size_t>> Work = {{Mod, 0}};
  std::vector<const Module *> Visiting;
  while (!Work.empty()) {
    auto &[Cur, Idx] = Work.back();
    if (Idx == 0)
      Visiting.push_back(Cur);
    if (Idx < Cur->Needed.size()) {
      const std::string &Dep = Cur->Needed[Idx++];
      if (moduleByName(Dep))
        continue;
      const Module *DepMod = Store.find(Dep);
      if (!DepMod) {
        Err = makeError(formatString("dependency '%s' of '%s' not found",
                                     Dep.c_str(), Cur->Name.c_str()));
        return nullptr;
      }
      bool InProgress =
          std::find(Visiting.begin(), Visiting.end(), DepMod) != Visiting.end();
      bool Queued =
          std::find(Order.begin(), Order.end(), DepMod) != Order.end();
      if (!InProgress && !Queued)
        Work.push_back({DepMod, 0});
      continue;
    }
    if (std::find(Order.begin(), Order.end(), Cur) == Order.end())
      Order.push_back(Cur);
    Visiting.pop_back();
    Work.pop_back();
  }

  // The executable (or dlopened module) should come first in symbol search
  // order but must still be mapped; mapAndRelocate preserves the given
  // order for load-order purposes. Put the requested module first, its
  // dependencies after, mirroring ELF global search order.
  std::vector<const Module *> LoadOrder;
  LoadOrder.push_back(Mod);
  for (const Module *Dep : Order)
    if (Dep != Mod)
      LoadOrder.push_back(Dep);

  if ((Err = mapAndRelocate(LoadOrder)))
    return nullptr;
  return moduleByName(Name);
}

void Process::buildTrampoline(const std::vector<uint64_t> &InitVAs,
                              uint64_t Entry) {
  // The trampoline is dynamically generated startup code (like ld.so's
  // startup path): call every .init entry, then push the exit sentinel and
  // jump to the program entry.
  std::vector<uint8_t> Code;
  TrampolineVA = 0x200000;
  uint64_t VA = TrampolineVA;
  auto Emit = [&](Instruction I) {
    encode(I, Code);
    VA = TrampolineVA + Code.size();
  };
  for (uint64_t Init : InitVAs) {
    Instruction C;
    C.Op = Opcode::CALL;
    C.Imm = static_cast<int64_t>(Init) -
            static_cast<int64_t>(VA + encodedLength(C));
    Emit(C);
  }
  Instruction Push;
  Push.Op = Opcode::PUSHI64;
  Push.Imm = static_cast<int64_t>(layout::ExitSentinel);
  Emit(Push);
  Instruction Jmp;
  Jmp.Op = Opcode::JMP;
  Jmp.Imm = static_cast<int64_t>(Entry) -
            static_cast<int64_t>(VA + encodedLength(Jmp));
  Emit(Jmp);
  M.Mem.writeBytes(TrampolineVA, Code.data(), Code.size());
  M.Mem.addExecRegion(TrampolineVA, Code.size());
}

Error Process::loadProgram(const std::string &Name) {
  Error Err;
  const LoadedModule *Exe = loadModule(Name, Err);
  if (!Exe)
    return Err;
  if (!Exe->Mod->Entry)
    return makeError(formatString("module '%s' has no entry point",
                                  Name.c_str()));

  // Collect .init entries in load order (dependencies first, then the
  // executable, matching ELF constructor order closely enough).
  std::vector<uint64_t> Inits;
  for (auto It = Loaded.rbegin(); It != Loaded.rend(); ++It)
    if (const Section *S = It->Mod->section(SectionKind::Init))
      if (S->size() > 0)
        Inits.push_back(It->toRuntime(S->Addr));

  buildTrampoline(Inits, Exe->toRuntime(Exe->Mod->Entry));

  // Machine state.
  M.reg(Reg::SP) = layout::StackTop;
  M.reg(Reg::TP) = layout::CanaryValue;
  M.PC = TrampolineVA;
  M.Tid = 0;
  M.Syscalls = this;

  // (Re)initialize the guest thread table with the main thread.
  {
    std::lock_guard<std::mutex> Lock(ThreadMtx);
    Threads.clear();
    GuestThread T0;
    T0.Tid = 0;
    Threads.push_back(std::move(T0));
    NextTid = 1;
  }
  return Error::success();
}

bool Process::fetch(uint64_t PC, Instruction &I) {
  {
    std::lock_guard<std::mutex> Lock(DecodeMtx);
    auto It = DecodeCache.find(PC);
    if (It != DecodeCache.end()) {
      I = It->second;
      return true;
    }
  }
  uint8_t Buf[16];
  for (unsigned K = 0; K < sizeof(Buf); ++K)
    Buf[K] = M.Mem.read8(PC + K);
  if (!decode(Buf, sizeof(Buf), I))
    return false;
  std::lock_guard<std::mutex> Lock(DecodeMtx);
  DecodeCache.emplace(PC, I);
  return true;
}

// --- guest threads --------------------------------------------------------

GuestThread *Process::threadByTid(uint32_t Tid) {
  for (GuestThread &T : Threads)
    if (T.Tid == Tid)
      return &T;
  return nullptr;
}

uint32_t Process::threadCount() const {
  std::lock_guard<std::mutex> Lock(ThreadMtx);
  return static_cast<uint32_t>(Threads.size());
}

Machine &Process::machineForTid(uint32_t Tid) {
  std::lock_guard<std::mutex> Lock(ThreadMtx);
  GuestThread *T = threadByTid(Tid);
  if (!T)
    JZ_UNREACHABLE("unknown guest thread id");
  return machineOf(*T);
}

void Process::markThreadExitedLocked(uint32_t Tid, uint64_t Value) {
  GuestThread *T = threadByTid(Tid);
  if (!T || T->St == GuestThread::State::Exited)
    return;
  T->St = GuestThread::State::Exited;
  T->BK = GuestThread::BlockKind::None;
  T->ExitValue = Value;
  // Wake joiners; their re-issued ThreadJoin now sees the exit value.
  for (GuestThread &J : Threads)
    if (J.St == GuestThread::State::Blocked &&
        J.BK == GuestThread::BlockKind::Join && J.BlockTarget == Tid) {
      J.St = GuestThread::State::Runnable;
      J.BK = GuestThread::BlockKind::None;
    }
  ThreadCv.notify_all();
}

void Process::noteThreadExit(Machine &TM) {
  std::lock_guard<std::mutex> Lock(ThreadMtx);
  markThreadExitedLocked(TM.Tid, TM.reg(Reg::R0));
}

RunBudget RunBudget::fromEnv() {
  RunBudget B;
  auto ReadU64 = [](const char *Name, uint64_t &Out) {
    if (const char *S = std::getenv(Name)) {
      char *End = nullptr;
      unsigned long long V = std::strtoull(S, &End, 10);
      if (End != S && *End == '\0')
        Out = V;
    }
  };
  ReadU64("JZ_MAX_GUEST_STEPS", B.MaxSteps);
  ReadU64("JZ_MAX_GUEST_CYCLES", B.MaxCycles);
  ReadU64("JZ_MAX_WALL_MS", B.MaxWallMs);
  return B;
}

std::string Process::deadlockDiagnostic() const {
  std::lock_guard<std::mutex> Lock(ThreadMtx);
  std::string Msg = "deadlock: every live guest thread is blocked";
  for (const GuestThread &T : Threads) {
    if (T.St != GuestThread::State::Blocked)
      continue;
    const Machine &TM = machineOf(T);
    if (T.BK == GuestThread::BlockKind::Futex)
      Msg += formatString("; tid=%u pc=0x%llx futex@0x%llx (word=0x%llx)",
                          T.Tid, static_cast<unsigned long long>(TM.PC),
                          static_cast<unsigned long long>(T.BlockTarget),
                          static_cast<unsigned long long>(
                              TM.Mem.read64(T.BlockTarget)));
    else
      Msg += formatString("; tid=%u pc=0x%llx join(tid=%llu)", T.Tid,
                          static_cast<unsigned long long>(TM.PC),
                          static_cast<unsigned long long>(T.BlockTarget));
  }
  return Msg;
}

std::vector<std::pair<uint32_t, Machine *>> Process::liveSiblings() {
  std::lock_guard<std::mutex> Lock(ThreadMtx);
  std::vector<std::pair<uint32_t, Machine *>> Out;
  for (GuestThread &T : Threads)
    if (T.Tid != 0 && T.St != GuestThread::State::Exited && T.Mach)
      Out.emplace_back(T.Tid, T.Mach.get());
  return Out;
}

bool Process::waitWhileBlocked(Machine &TM) {
  std::unique_lock<std::mutex> Lock(ThreadMtx);
  while (true) {
    if (StopAll.load(std::memory_order_relaxed))
      return true;
    GuestThread *T = threadByTid(TM.Tid);
    if (!T || T->St != GuestThread::State::Blocked)
      return true;
    // Deadlock check: only a runnable thread can ever wake a blocked one
    // (futex Wake / thread exit both require the waker to execute), so
    // when no thread is runnable nobody is coming.
    bool AnyRunnable = false;
    for (const GuestThread &O : Threads)
      if (O.St == GuestThread::State::Runnable) {
        AnyRunnable = true;
        break;
      }
    if (!AnyRunnable)
      return false;
    ThreadCv.wait(Lock);
  }
}

void Process::requestStop() {
  std::lock_guard<std::mutex> Lock(ThreadMtx);
  StopAll.store(true, std::memory_order_release);
  ThreadCv.notify_all();
}

uint64_t Process::totalCycles() const {
  std::lock_guard<std::mutex> Lock(ThreadMtx);
  if (Threads.empty())
    return M.Cycles;
  uint64_t Sum = 0;
  for (const GuestThread &T : Threads)
    Sum += machineOf(T).Cycles;
  return Sum;
}

uint64_t Process::totalRetired() const {
  std::lock_guard<std::mutex> Lock(ThreadMtx);
  if (Threads.empty())
    return M.Retired;
  uint64_t Sum = 0;
  for (const GuestThread &T : Threads)
    Sum += machineOf(T).Retired;
  return Sum;
}

SyscallOutcome Process::handleSyscall(Machine &M, uint8_t Num) {
  // NB: the parameter M (the calling guest thread's machine) deliberately
  // shadows the member M (the main thread's machine).
  switch (static_cast<SyscallNum>(Num)) {
  case SyscallNum::Exit:
    ExitCodeVal.store(static_cast<int>(M.reg(Reg::R0)),
                      std::memory_order_relaxed);
    return SyscallOutcome::ExitProcess;
  case SyscallNum::Write: {
    uint64_t Ptr = M.reg(Reg::R0);
    uint64_t Len = std::min<uint64_t>(M.reg(Reg::R1), 1 << 20);
    std::lock_guard<std::mutex> Lock(OutMtx);
    for (uint64_t I = 0; I < Len; ++I)
      Output += static_cast<char>(M.Mem.read8(Ptr + I));
    M.reg(Reg::R0) = Len;
    return SyscallOutcome::Continue;
  }
  case SyscallNum::Sbrk: {
    uint64_t Delta = M.reg(Reg::R0);
    M.reg(Reg::R0) = hostSbrk(Delta);
    return SyscallOutcome::Continue;
  }
  case SyscallNum::MapCode: {
    std::lock_guard<std::recursive_mutex> LoadLock(LoaderMtx);
    uint64_t Addr = M.reg(Reg::R0);
    uint64_t Len = M.reg(Reg::R1);
    M.Mem.addExecRegion(Addr, Len);
    // Invalidate stale decoded instructions over the region.  An entry is
    // stale if any byte of the instruction overlaps the remapped range, not
    // just its first byte — a write inside a multi-byte instruction must
    // evict the decode keyed at its head.
    {
      std::lock_guard<std::mutex> DLock(DecodeMtx);
      for (auto It = DecodeCache.begin(); It != DecodeCache.end();)
        if (It->first < Addr + Len && It->first + It->second.Size > Addr)
          It = DecodeCache.erase(It);
        else
          ++It;
    }
    for (ModuleObserver *O : Observers)
      O->onCodeMapped(*this, Addr, Len);
    M.reg(Reg::R0) = Addr;
    return SyscallOutcome::Continue;
  }
  case SyscallNum::Dlopen: {
    std::string Name = M.Mem.readCString(M.reg(Reg::R0));
    Error Err;
    const LoadedModule *LM = loadModule(Name, Err);
    M.reg(Reg::R0) = LM ? LM->Id + 1 : 0;
    return SyscallOutcome::Continue;
  }
  case SyscallNum::Dlsym: {
    uint64_t Handle = M.reg(Reg::R0);
    std::string Name = M.Mem.readCString(M.reg(Reg::R1));
    const LoadedModule *LM =
        Handle ? moduleById(static_cast<unsigned>(Handle - 1)) : nullptr;
    if (!LM) {
      M.reg(Reg::R0) = 0;
      return SyscallOutcome::Continue;
    }
    const Symbol *S = LM->Mod->findExported(Name);
    M.reg(Reg::R0) = S ? LM->toRuntime(S->Value) : 0;
    return SyscallOutcome::Continue;
  }
  case SyscallNum::Dlclose: {
    uint64_t Handle = M.reg(Reg::R0);
    const LoadedModule *LM =
        Handle ? moduleById(static_cast<unsigned>(Handle - 1)) : nullptr;
    if (!LM) {
      M.reg(Reg::R0) = ~0ull;
      return SyscallOutcome::Continue;
    }
    Error E = unloadModule(LM->Mod->Name);
    M.reg(Reg::R0) = E ? ~0ull : 0;
    return SyscallOutcome::Continue;
  }
  case SyscallNum::Cycles:
    M.reg(Reg::R0) = M.Cycles;
    return SyscallOutcome::Continue;
  case SyscallNum::Resolve: {
    // Lazy PLT binding. The stub pushed the PLT index; the caller's return
    // address lies below it. Identify the module from the current PC.
    std::lock_guard<std::recursive_mutex> LoadLock(LoaderMtx);
    const LoadedModule *LM = moduleAt(M.PC);
    if (!LM)
      return SyscallOutcome::ExitProcess;
    uint64_t Index = M.pop64();
    if (Index >= LM->Mod->Plt.size())
      return SyscallOutcome::ExitProcess;
    const PltEntry &PE = LM->Mod->Plt[Index];
    uint64_t Target = resolveSymbol(PE.SymbolName);
    if (!Target)
      return SyscallOutcome::ExitProcess;
    // Patch the GOT slot so subsequent calls go straight through.
    M.Mem.write64(LM->toRuntime(PE.GotSlotVA), Target);
    // Leave the target on the stack; the following RET "calls" it.
    M.push64(Target);
    return SyscallOutcome::Continue;
  }
  case SyscallNum::ThreadCreate: {
    uint64_t Entry = M.reg(Reg::R0);
    uint64_t Arg = M.reg(Reg::R1);
    Machine *TM = nullptr;
    uint32_t Tid = 0;
    {
      std::lock_guard<std::mutex> Lock(ThreadMtx);
      if (Threads.empty() || NextTid >= MaxThreads) {
        M.reg(Reg::R0) = ~0ull;
        return SyscallOutcome::Continue;
      }
      Tid = NextTid++;
      GuestThread T;
      T.Tid = Tid;
      T.Mach = std::make_unique<Machine>(M.memHandle());
      TM = T.Mach.get();
      TM->Tid = Tid;
      TM->Syscalls = this;
      TM->reg(Reg::SP) =
          layout::StackTop - static_cast<uint64_t>(Tid) * layout::StackSize;
      TM->reg(Reg::TP) = layout::CanaryValue;
      TM->reg(Reg::R0) = Arg;
      TM->push64(layout::ThreadExitSentinel);
      TM->PC = Entry;
      Threads.push_back(std::move(T));
    }
    // Outside ThreadMtx: the spawn hook may start a host thread that
    // immediately takes Process locks.
    if (SpawnFn)
      SpawnFn(Tid, *TM);
    M.reg(Reg::R0) = Tid;
    return SyscallOutcome::Continue;
  }
  case SyscallNum::ThreadJoin: {
    uint32_t Target = static_cast<uint32_t>(M.reg(Reg::R0));
    std::lock_guard<std::mutex> Lock(ThreadMtx);
    GuestThread *T = threadByTid(Target);
    if (!T || Target == M.Tid) {
      M.reg(Reg::R0) = ~0ull;
      return SyscallOutcome::Continue;
    }
    if (T->St == GuestThread::State::Exited) {
      M.reg(Reg::R0) = T->ExitValue;
      return SyscallOutcome::Continue;
    }
    GuestThread *Self = threadByTid(M.Tid);
    if (!Self) {
      M.reg(Reg::R0) = ~0ull;
      return SyscallOutcome::Continue;
    }
    Self->St = GuestThread::State::Blocked;
    Self->BK = GuestThread::BlockKind::Join;
    Self->BlockTarget = Target;
    return SyscallOutcome::Block;
  }
  case SyscallNum::ThreadExit: {
    std::lock_guard<std::mutex> Lock(ThreadMtx);
    markThreadExitedLocked(M.Tid, M.reg(Reg::R0));
    return SyscallOutcome::ExitThread;
  }
  case SyscallNum::Futex: {
    uint64_t Addr = M.reg(Reg::R0);
    uint64_t Op = M.reg(Reg::R1);
    uint64_t Val = M.reg(Reg::R2);
    std::lock_guard<std::mutex> Lock(ThreadMtx);
    if (Op == futexop::Wake) {
      uint64_t Woken = 0;
      for (GuestThread &T : Threads)
        if (T.St == GuestThread::State::Blocked &&
            T.BK == GuestThread::BlockKind::Futex && T.BlockTarget == Addr) {
          T.St = GuestThread::State::Runnable;
          T.BK = GuestThread::BlockKind::None;
          ++Woken;
        }
      ThreadCv.notify_all();
      M.reg(Reg::R0) = Woken;
      return SyscallOutcome::Continue;
    }
    // Wait: the value re-check under ThreadMtx closes the lost-wakeup
    // window (a Wake between the guest's own check and this syscall must
    // have changed the value first, which we observe here).
    if (M.Mem.read64(Addr) != Val) {
      M.reg(Reg::R0) = 0;
      return SyscallOutcome::Continue;
    }
    GuestThread *Self = threadByTid(M.Tid);
    if (!Self) {
      M.reg(Reg::R0) = 0;
      return SyscallOutcome::Continue;
    }
    Self->St = GuestThread::State::Blocked;
    Self->BK = GuestThread::BlockKind::Futex;
    Self->BlockTarget = Addr;
    return SyscallOutcome::Block;
  }
  }
  return SyscallOutcome::ExitProcess;
}

RunResult Process::runNative(uint64_t MaxSteps) {
  RunBudget B;
  B.MaxSteps = MaxSteps;
  return runNative(B);
}

RunResult Process::runNative(const RunBudget &Budget) {
  RunResult RR;
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline{};
  if (Budget.MaxWallMs)
    Deadline = Clock::now() + std::chrono::milliseconds(Budget.MaxWallMs);
  {
    std::lock_guard<std::mutex> Lock(ThreadMtx);
    if (Threads.empty()) {
      GuestThread T0;
      T0.Tid = 0;
      Threads.push_back(std::move(T0));
    }
  }

  // Deterministic interleaving: JZ_MT_SEED != 0 randomizes (but
  // reproducibly, xorshift64) both the thread choice and quantum length;
  // otherwise round-robin with a fixed quantum. With one thread either
  // policy degenerates to the seed interpreter loop.
  uint64_t Rng = 0;
  if (const char *S = std::getenv("JZ_MT_SEED"))
    Rng = std::strtoull(S, nullptr, 10);
  auto NextRand = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };

  auto Totals = [&] {
    RR.Cycles = totalCycles();
    RR.Retired = totalRetired();
  };

  uint64_t Steps = 0;
  size_t Cur = 0;
  while (Steps < Budget.MaxSteps) {
    // Cooperative checkpoint: a clean StepLimit stop at an instruction
    // boundary with no syscall in flight — the state is snapshottable.
    if (Budget.CheckpointAfterSteps && Steps >= Budget.CheckpointAfterSteps) {
      RR.St = RunResult::Status::StepLimit;
      Totals();
      return RR;
    }
    if (Budget.MaxWallMs && Clock::now() >= Deadline) {
      RR.St = RunResult::Status::Faulted;
      RR.FaultMsg = formatString(
          "watchdog: wall-clock budget %llu ms exceeded after %llu steps",
          static_cast<unsigned long long>(Budget.MaxWallMs),
          static_cast<unsigned long long>(Steps));
      Totals();
      return RR;
    }
    // Pick the next runnable thread.
    size_t Pick = SIZE_MAX;
    bool AnyBlocked = false;
    {
      std::lock_guard<std::mutex> Lock(ThreadMtx);
      size_t N = Threads.size();
      size_t Runnable = 0;
      for (size_t I = 0; I < N; ++I)
        if (Threads[I].St == GuestThread::State::Runnable)
          ++Runnable;
        else if (Threads[I].St == GuestThread::State::Blocked)
          AnyBlocked = true;
      if (Runnable) {
        size_t Skip = Rng ? NextRand() % Runnable : 0;
        for (size_t Off = 0; Off < N; ++Off) {
          size_t I = (Cur + Off) % N;
          if (Threads[I].St != GuestThread::State::Runnable)
            continue;
          if (Skip == 0) {
            Pick = I;
            break;
          }
          --Skip;
        }
      }
    }
    if (Pick == SIZE_MAX) {
      if (AnyBlocked) {
        RR.St = RunResult::Status::Faulted;
        RR.FaultMsg = deadlockDiagnostic();
        Totals();
        return RR;
      }
      // Every thread exited without an Exit syscall (main included via
      // ThreadExit): the main thread's exit value is the process result.
      RR.St = RunResult::Status::Exited;
      RR.ExitCode = exitCode()
                        ? exitCode()
                        : static_cast<int>(Threads.front().ExitValue);
      Totals();
      return RR;
    }

    GuestThread &T = Threads[Pick];
    Machine &TM = machineOf(T);
    if (Budget.MaxCycles && TM.Cycles > Budget.MaxCycles) {
      RR.St = RunResult::Status::Faulted;
      RR.FaultMsg = formatString(
          "watchdog: cycle budget %llu exceeded (tid=%u pc=0x%llx "
          "cycles=%llu)",
          static_cast<unsigned long long>(Budget.MaxCycles), TM.Tid,
          static_cast<unsigned long long>(TM.PC),
          static_cast<unsigned long long>(TM.Cycles));
      Totals();
      return RR;
    }
    uint64_t Quantum = Rng ? 1 + (NextRand() & 63) : 64;
    bool Yield = false;
    for (uint64_t Q = 0; Q < Quantum && Steps < Budget.MaxSteps && !Yield;
         ++Q, ++Steps) {
      if (!NoExecRanges.empty()) {
        bool Vacated = false;
        for (const auto &[Lo, Hi] : NoExecRanges)
          if (TM.PC >= Lo && TM.PC < Hi) {
            Vacated = true;
            break;
          }
        if (Vacated) {
          // Vacated original code of an AOT-rewritten module: the bytes
          // are intact but must not run uninstrumented. The AOT runner
          // re-enters the DBI tier at exactly this PC.
          RR.St = RunResult::Status::Trapped;
          RR.TrapCode = static_cast<uint8_t>(TrapCode::VacatedExec);
          RR.TrapPC = TM.PC;
          Totals();
          return RR;
        }
      }
      Instruction I;
      if (!fetch(TM.PC, I)) {
        RR.St = RunResult::Status::Faulted;
        RR.FaultMsg = formatString("undecodable instruction at 0x%llx",
                                   static_cast<unsigned long long>(TM.PC));
        Totals();
        return RR;
      }
      ExecResult E = TM.execute(I, TM.PC);
      switch (E.K) {
      case ExecResult::Kind::Fallthrough:
        TM.PC += I.Size;
        break;
      case ExecResult::Kind::Branch:
      case ExecResult::Kind::Call:
      case ExecResult::Kind::Return:
        TM.PC = E.Target;
        break;
      case ExecResult::Kind::Exited:
        if (E.Target == layout::ThreadExitSentinel) {
          // Only this thread is done; RET-to-sentinel exits report R0.
          noteThreadExit(TM);
          Yield = true;
          break;
        }
        RR.St = RunResult::Status::Exited;
        RR.ExitCode =
            exitCode() ? exitCode() : static_cast<int>(TM.reg(Reg::R0));
        Totals();
        return RR;
      case ExecResult::Kind::Blocked:
        // handleSyscall already parked the thread; PC stays on the
        // syscall, which is re-issued once a waker flips it runnable.
        Yield = true;
        break;
      case ExecResult::Kind::Trap:
        RR.St = RunResult::Status::Trapped;
        RR.TrapCode = E.TrapCode;
        RR.TrapPC = TM.PC;
        Totals();
        return RR;
      case ExecResult::Kind::Fault:
        RR.St = RunResult::Status::Faulted;
        RR.FaultMsg = E.FaultMsg ? E.FaultMsg : "fault";
        Totals();
        return RR;
      }
    }
    Cur = Pick + 1;
  }
  RR.St = RunResult::Status::StepLimit;
  Totals();
  return RR;
}
