//===- vm/Process.cpp -----------------------------------------------------==//

#include "vm/Process.h"

#include "isa/Encoding.h"
#include "support/Format.h"

#include <algorithm>

using namespace janitizer;

const LoadedModule *Process::moduleAt(uint64_t RuntimeVA) const {
  for (const LoadedModule &LM : Loaded)
    if (LM.containsRuntime(RuntimeVA))
      return &LM;
  return nullptr;
}

const LoadedModule *Process::moduleByName(const std::string &Name) const {
  for (const LoadedModule &LM : Loaded)
    if (LM.Mod->Name == Name)
      return &LM;
  return nullptr;
}

const LoadedModule *Process::moduleById(unsigned Id) const {
  for (const LoadedModule &LM : Loaded)
    if (LM.Id == Id)
      return &LM;
  return nullptr;
}

uint64_t Process::resolveSymbol(const std::string &Name) const {
  for (const LoadedModule &LM : Loaded)
    if (const Symbol *S = LM.Mod->findExported(Name))
      return LM.toRuntime(S->Value);
  return 0;
}

uint64_t Process::hostSbrk(uint64_t Delta) {
  uint64_t Old = Brk;
  Brk += Delta;
  return Old;
}

Error Process::mapAndRelocate(const std::vector<const Module *> &NewMods) {
  size_t FirstNew = Loaded.size();
  for (const Module *Mod : NewMods) {
    LoadedModule LM;
    LM.Mod = Mod;
    LM.Id = NextModuleId++;
    if (Mod->IsPIC) {
      LM.LoadBase = NextPicBase;
      uint64_t Span = Mod->linkEnd() - Mod->LinkBase;
      NextPicBase += ((Span + layout::PicRegionStride - 1) /
                      layout::PicRegionStride) *
                     layout::PicRegionStride;
    } else {
      LM.LoadBase = Mod->LinkBase;
    }
    LM.Slide = static_cast<int64_t>(LM.LoadBase) -
               static_cast<int64_t>(Mod->LinkBase);
    LM.LoadEnd = LM.toRuntime(Mod->linkEnd());
    Loaded.push_back(LM);

    // Map sections.
    for (const Section &S : Mod->Sections) {
      uint64_t RT = LM.toRuntime(S.Addr);
      if (S.Kind == SectionKind::Bss) {
        M.Mem.fill(RT, S.BssSize, 0);
        continue;
      }
      if (!S.Bytes.empty())
        M.Mem.writeBytes(RT, S.Bytes.data(), S.Bytes.size());
      if (isExecutableSection(S.Kind))
        M.Mem.addExecRegion(RT, S.Bytes.size());
    }
  }

  // Apply dynamic relocations once every new module is mapped, so
  // SymAbs64 can resolve across the whole closure.
  for (size_t Idx = FirstNew; Idx < Loaded.size(); ++Idx) {
    const LoadedModule &LM = Loaded[Idx];
    for (const Relocation &R : LM.Mod->DynRelocs) {
      uint64_t Site = LM.toRuntime(R.Site);
      switch (R.Kind) {
      case RelocKind::Rebase64:
        M.Mem.write64(Site, LM.toRuntime(static_cast<uint64_t>(R.Addend)));
        break;
      case RelocKind::SymAbs64: {
        uint64_t Target = resolveSymbol(R.SymbolName);
        if (!Target)
          return makeError(formatString(
              "unresolved symbol '%s' needed by module '%s'",
              R.SymbolName.c_str(), LM.Mod->Name.c_str()));
        M.Mem.write64(Site, Target + static_cast<uint64_t>(R.Addend));
        break;
      }
      }
    }
  }

  // Notify observers in load order.
  for (size_t Idx = FirstNew; Idx < Loaded.size(); ++Idx)
    for (ModuleObserver *O : Observers)
      O->onModuleLoad(*this, Loaded[Idx]);
  return Error::success();
}

Error Process::unloadModule(const std::string &Name) {
  auto It = Loaded.begin();
  for (; It != Loaded.end(); ++It)
    if (It->Mod->Name == Name)
      break;
  if (It == Loaded.end())
    return makeError(formatString("module '%s' is not loaded", Name.c_str()));
  if (!It->Mod->IsSharedObject)
    return makeError(formatString("module '%s' is not a shared object",
                                  Name.c_str()));

  // Notify while the module is still registered so observers can drop
  // per-module state (rule tables, cached blocks) keyed by it.
  for (ModuleObserver *O : Observers)
    O->onModuleUnload(*this, *It);

  // Stale decoded instructions over the module's range must not survive a
  // later mapping at the same addresses.
  for (auto DIt = DecodeCache.begin(); DIt != DecodeCache.end();)
    if (DIt->first >= It->LoadBase && DIt->first < It->LoadEnd)
      DIt = DecodeCache.erase(DIt);
    else
      ++DIt;

  Loaded.erase(It);
  return Error::success();
}

const LoadedModule *Process::loadModule(const std::string &Name, Error &Err) {
  if (const LoadedModule *LM = moduleByName(Name))
    return LM;
  const Module *Mod = Store.find(Name);
  if (!Mod) {
    Err = makeError(formatString("module '%s' not found", Name.c_str()));
    return nullptr;
  }

  // Collect the not-yet-loaded dependency closure, dependencies first.
  std::vector<const Module *> Order;
  std::vector<const Module *> Stack = {Mod};
  // Post-order DFS.
  std::vector<std::pair<const Module *, size_t>> Work = {{Mod, 0}};
  std::vector<const Module *> Visiting;
  while (!Work.empty()) {
    auto &[Cur, Idx] = Work.back();
    if (Idx == 0)
      Visiting.push_back(Cur);
    if (Idx < Cur->Needed.size()) {
      const std::string &Dep = Cur->Needed[Idx++];
      if (moduleByName(Dep))
        continue;
      const Module *DepMod = Store.find(Dep);
      if (!DepMod) {
        Err = makeError(formatString("dependency '%s' of '%s' not found",
                                     Dep.c_str(), Cur->Name.c_str()));
        return nullptr;
      }
      bool InProgress =
          std::find(Visiting.begin(), Visiting.end(), DepMod) != Visiting.end();
      bool Queued =
          std::find(Order.begin(), Order.end(), DepMod) != Order.end();
      if (!InProgress && !Queued)
        Work.push_back({DepMod, 0});
      continue;
    }
    if (std::find(Order.begin(), Order.end(), Cur) == Order.end())
      Order.push_back(Cur);
    Visiting.pop_back();
    Work.pop_back();
  }

  // The executable (or dlopened module) should come first in symbol search
  // order but must still be mapped; mapAndRelocate preserves the given
  // order for load-order purposes. Put the requested module first, its
  // dependencies after, mirroring ELF global search order.
  std::vector<const Module *> LoadOrder;
  LoadOrder.push_back(Mod);
  for (const Module *Dep : Order)
    if (Dep != Mod)
      LoadOrder.push_back(Dep);

  if ((Err = mapAndRelocate(LoadOrder)))
    return nullptr;
  return moduleByName(Name);
}

void Process::buildTrampoline(const std::vector<uint64_t> &InitVAs,
                              uint64_t Entry) {
  // The trampoline is dynamically generated startup code (like ld.so's
  // startup path): call every .init entry, then push the exit sentinel and
  // jump to the program entry.
  std::vector<uint8_t> Code;
  TrampolineVA = 0x200000;
  uint64_t VA = TrampolineVA;
  auto Emit = [&](Instruction I) {
    encode(I, Code);
    VA = TrampolineVA + Code.size();
  };
  for (uint64_t Init : InitVAs) {
    Instruction C;
    C.Op = Opcode::CALL;
    C.Imm = static_cast<int64_t>(Init) -
            static_cast<int64_t>(VA + encodedLength(C));
    Emit(C);
  }
  Instruction Push;
  Push.Op = Opcode::PUSHI64;
  Push.Imm = static_cast<int64_t>(layout::ExitSentinel);
  Emit(Push);
  Instruction Jmp;
  Jmp.Op = Opcode::JMP;
  Jmp.Imm = static_cast<int64_t>(Entry) -
            static_cast<int64_t>(VA + encodedLength(Jmp));
  Emit(Jmp);
  M.Mem.writeBytes(TrampolineVA, Code.data(), Code.size());
  M.Mem.addExecRegion(TrampolineVA, Code.size());
}

Error Process::loadProgram(const std::string &Name) {
  Error Err;
  const LoadedModule *Exe = loadModule(Name, Err);
  if (!Exe)
    return Err;
  if (!Exe->Mod->Entry)
    return makeError(formatString("module '%s' has no entry point",
                                  Name.c_str()));

  // Collect .init entries in load order (dependencies first, then the
  // executable, matching ELF constructor order closely enough).
  std::vector<uint64_t> Inits;
  for (auto It = Loaded.rbegin(); It != Loaded.rend(); ++It)
    if (const Section *S = It->Mod->section(SectionKind::Init))
      if (S->size() > 0)
        Inits.push_back(It->toRuntime(S->Addr));

  buildTrampoline(Inits, Exe->toRuntime(Exe->Mod->Entry));

  // Machine state.
  M.reg(Reg::SP) = layout::StackTop;
  M.reg(Reg::TP) = layout::CanaryValue;
  M.PC = TrampolineVA;
  M.Syscalls = this;
  return Error::success();
}

bool Process::fetch(uint64_t PC, Instruction &I) {
  auto It = DecodeCache.find(PC);
  if (It != DecodeCache.end()) {
    I = It->second;
    return true;
  }
  uint8_t Buf[16];
  for (unsigned K = 0; K < sizeof(Buf); ++K)
    Buf[K] = M.Mem.read8(PC + K);
  if (!decode(Buf, sizeof(Buf), I))
    return false;
  DecodeCache.emplace(PC, I);
  return true;
}

bool Process::handleSyscall(uint8_t Num) {
  switch (static_cast<SyscallNum>(Num)) {
  case SyscallNum::Exit:
    ExitCodeVal = static_cast<int>(M.reg(Reg::R0));
    return false;
  case SyscallNum::Write: {
    uint64_t Ptr = M.reg(Reg::R0);
    uint64_t Len = std::min<uint64_t>(M.reg(Reg::R1), 1 << 20);
    for (uint64_t I = 0; I < Len; ++I)
      Output += static_cast<char>(M.Mem.read8(Ptr + I));
    M.reg(Reg::R0) = Len;
    return true;
  }
  case SyscallNum::Sbrk: {
    uint64_t Delta = M.reg(Reg::R0);
    M.reg(Reg::R0) = hostSbrk(Delta);
    return true;
  }
  case SyscallNum::MapCode: {
    uint64_t Addr = M.reg(Reg::R0);
    uint64_t Len = M.reg(Reg::R1);
    M.Mem.addExecRegion(Addr, Len);
    // Invalidate stale decoded instructions over the region.  An entry is
    // stale if any byte of the instruction overlaps the remapped range, not
    // just its first byte — a write inside a multi-byte instruction must
    // evict the decode keyed at its head.
    for (auto It = DecodeCache.begin(); It != DecodeCache.end();)
      if (It->first < Addr + Len && It->first + It->second.Size > Addr)
        It = DecodeCache.erase(It);
      else
        ++It;
    for (ModuleObserver *O : Observers)
      O->onCodeMapped(*this, Addr, Len);
    M.reg(Reg::R0) = Addr;
    return true;
  }
  case SyscallNum::Dlopen: {
    std::string Name = M.Mem.readCString(M.reg(Reg::R0));
    Error Err;
    const LoadedModule *LM = loadModule(Name, Err);
    M.reg(Reg::R0) = LM ? LM->Id + 1 : 0;
    return true;
  }
  case SyscallNum::Dlsym: {
    uint64_t Handle = M.reg(Reg::R0);
    std::string Name = M.Mem.readCString(M.reg(Reg::R1));
    const LoadedModule *LM =
        Handle ? moduleById(static_cast<unsigned>(Handle - 1)) : nullptr;
    if (!LM) {
      M.reg(Reg::R0) = 0;
      return true;
    }
    const Symbol *S = LM->Mod->findExported(Name);
    M.reg(Reg::R0) = S ? LM->toRuntime(S->Value) : 0;
    return true;
  }
  case SyscallNum::Dlclose: {
    uint64_t Handle = M.reg(Reg::R0);
    const LoadedModule *LM =
        Handle ? moduleById(static_cast<unsigned>(Handle - 1)) : nullptr;
    if (!LM) {
      M.reg(Reg::R0) = ~0ull;
      return true;
    }
    Error E = unloadModule(LM->Mod->Name);
    M.reg(Reg::R0) = E ? ~0ull : 0;
    return true;
  }
  case SyscallNum::Cycles:
    M.reg(Reg::R0) = M.Cycles;
    return true;
  case SyscallNum::Resolve: {
    // Lazy PLT binding. The stub pushed the PLT index; the caller's return
    // address lies below it. Identify the module from the current PC.
    const LoadedModule *LM = moduleAt(M.PC);
    if (!LM)
      return false;
    uint64_t Index = M.pop64();
    if (Index >= LM->Mod->Plt.size())
      return false;
    const PltEntry &PE = LM->Mod->Plt[Index];
    uint64_t Target = resolveSymbol(PE.SymbolName);
    if (!Target)
      return false;
    // Patch the GOT slot so subsequent calls go straight through.
    M.Mem.write64(LM->toRuntime(PE.GotSlotVA), Target);
    // Leave the target on the stack; the following RET "calls" it.
    M.push64(Target);
    return true;
  }
  }
  return false;
}

RunResult Process::runNative(uint64_t MaxSteps) {
  RunResult RR;
  for (uint64_t Step = 0; Step < MaxSteps; ++Step) {
    Instruction I;
    if (!fetch(M.PC, I)) {
      RR.St = RunResult::Status::Faulted;
      RR.FaultMsg = formatString("undecodable instruction at 0x%llx",
                                 static_cast<unsigned long long>(M.PC));
      break;
    }
    ExecResult E = M.execute(I, M.PC);
    switch (E.K) {
    case ExecResult::Kind::Fallthrough:
      M.PC += I.Size;
      break;
    case ExecResult::Kind::Branch:
    case ExecResult::Kind::Call:
    case ExecResult::Kind::Return:
      M.PC = E.Target;
      break;
    case ExecResult::Kind::Exited:
      RR.St = RunResult::Status::Exited;
      RR.ExitCode = ExitCodeVal ? ExitCodeVal : static_cast<int>(M.reg(Reg::R0));
      RR.Cycles = M.Cycles;
      RR.Retired = M.Retired;
      return RR;
    case ExecResult::Kind::Trap:
      RR.St = RunResult::Status::Trapped;
      RR.TrapCode = E.TrapCode;
      RR.TrapPC = M.PC;
      RR.Cycles = M.Cycles;
      RR.Retired = M.Retired;
      return RR;
    case ExecResult::Kind::Fault:
      RR.St = RunResult::Status::Faulted;
      RR.FaultMsg = E.FaultMsg ? E.FaultMsg : "fault";
      RR.Cycles = M.Cycles;
      RR.Retired = M.Retired;
      return RR;
    }
  }
  if (RR.St != RunResult::Status::Faulted)
    RR.St = RunResult::Status::StepLimit;
  RR.Cycles = M.Cycles;
  RR.Retired = M.Retired;
  return RR;
}
