//===- vm/Machine.cpp -----------------------------------------------------==//

#include "vm/Machine.h"

#include "support/Error.h"
#include "vm/Syscalls.h"

using namespace janitizer;

uint64_t Machine::effectiveAddr(const MemOperand &M, uint64_t OrigPC,
                                unsigned Size) const {
  uint64_t A = static_cast<uint64_t>(static_cast<int64_t>(M.Disp));
  if (M.HasBase)
    A += reg(M.Base);
  if (M.HasIndex)
    A += reg(M.Index) << M.ScaleLog2;
  if (M.PCRel)
    A += OrigPC + Size;
  return A;
}

void Machine::push64(uint64_t V) {
  reg(Reg::SP) -= 8;
  Mem.write64(reg(Reg::SP), V);
}

uint64_t Machine::pop64() {
  uint64_t V = Mem.read64(reg(Reg::SP));
  reg(Reg::SP) += 8;
  return V;
}

void Machine::setFlagsLogic(uint64_t Result) {
  ZF = Result == 0;
  SF = static_cast<int64_t>(Result) < 0;
  CF = false;
  OF = false;
}

ExecResult Machine::execute(const Instruction &I, uint64_t OrigPC) {
  ExecResult Res;
  Cycles += cost::Base;
  ++Retired;

  auto Arith = [&](Opcode Op, uint64_t A, uint64_t B, bool Writeback,
                   Reg Dst) -> bool {
    uint64_t V = 0;
    switch (Op) {
    case Opcode::ADD: {
      V = A + B;
      CF = V < A;
      OF = (~(A ^ B) & (A ^ V)) >> 63;
      break;
    }
    case Opcode::SUB:
    case Opcode::CMP: {
      V = A - B;
      CF = A < B;
      OF = ((A ^ B) & (A ^ V)) >> 63;
      break;
    }
    case Opcode::AND:
    case Opcode::TEST:
      V = A & B;
      CF = OF = false;
      break;
    case Opcode::OR:
      V = A | B;
      CF = OF = false;
      break;
    case Opcode::XOR:
      V = A ^ B;
      CF = OF = false;
      break;
    case Opcode::SHL: {
      unsigned S = B & 63;
      V = S ? (A << S) : A;
      CF = S ? ((A >> (64 - S)) & 1) : CF;
      OF = false;
      break;
    }
    case Opcode::SHR: {
      unsigned S = B & 63;
      V = S ? (A >> S) : A;
      CF = S ? ((A >> (S - 1)) & 1) : CF;
      OF = false;
      break;
    }
    case Opcode::MUL: {
      Cycles += cost::MulDiv;
      unsigned __int128 W = static_cast<unsigned __int128>(A) * B;
      V = static_cast<uint64_t>(W);
      CF = OF = (W >> 64) != 0;
      break;
    }
    case Opcode::DIV: {
      Cycles += cost::MulDiv;
      if (B == 0)
        return false;
      V = A / B;
      CF = OF = false;
      break;
    }
    default:
      JZ_UNREACHABLE("not an ALU opcode");
    }
    ZF = V == 0;
    SF = static_cast<int64_t>(V) < 0;
    if (Writeback)
      reg(Dst) = V;
    return true;
  };

  switch (I.Op) {
  case Opcode::NOP:
    break;
  case Opcode::HLT:
    Res.K = ExecResult::Kind::Exited;
    break;
  case Opcode::MOV_RR:
    reg(I.Rd) = reg(I.Rs);
    break;
  case Opcode::MOV_RI64:
  case Opcode::MOV_RI32:
    reg(I.Rd) = static_cast<uint64_t>(I.Imm);
    break;
  case Opcode::LEA:
    reg(I.Rd) = effectiveAddr(I.Mem, OrigPC, I.Size);
    break;
  case Opcode::LD1:
    Cycles += cost::MemAccess;
    reg(I.Rd) = Mem.read8(effectiveAddr(I.Mem, OrigPC, I.Size));
    break;
  case Opcode::LD2:
    Cycles += cost::MemAccess;
    reg(I.Rd) = Mem.read16(effectiveAddr(I.Mem, OrigPC, I.Size));
    break;
  case Opcode::LD4:
    Cycles += cost::MemAccess;
    reg(I.Rd) = Mem.read32(effectiveAddr(I.Mem, OrigPC, I.Size));
    break;
  case Opcode::LD8:
    Cycles += cost::MemAccess;
    reg(I.Rd) = Mem.read64(effectiveAddr(I.Mem, OrigPC, I.Size));
    break;
  case Opcode::ST1:
    Cycles += cost::MemAccess;
    Mem.write8(effectiveAddr(I.Mem, OrigPC, I.Size),
               static_cast<uint8_t>(reg(I.Rd)));
    break;
  case Opcode::ST2:
    Cycles += cost::MemAccess;
    Mem.write16(effectiveAddr(I.Mem, OrigPC, I.Size),
                static_cast<uint16_t>(reg(I.Rd)));
    break;
  case Opcode::ST4:
    Cycles += cost::MemAccess;
    Mem.write32(effectiveAddr(I.Mem, OrigPC, I.Size),
                static_cast<uint32_t>(reg(I.Rd)));
    break;
  case Opcode::ST8:
    Cycles += cost::MemAccess;
    Mem.write64(effectiveAddr(I.Mem, OrigPC, I.Size), reg(I.Rd));
    break;
  case Opcode::PUSHF:
    Cycles += cost::MemAccess;
    push64(packFlags());
    break;
  case Opcode::POPF:
    Cycles += cost::MemAccess;
    unpackFlags(pop64());
    break;

  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::MUL:
  case Opcode::DIV:
    if (!Arith(I.Op, reg(I.Rd), reg(I.Rs), true, I.Rd)) {
      Res.K = ExecResult::Kind::Fault;
      Res.FaultMsg = "division by zero";
    }
    break;
  case Opcode::CMP:
  case Opcode::TEST:
    Arith(I.Op, reg(I.Rd), reg(I.Rs), false, I.Rd);
    break;
  case Opcode::ADDI:
  case Opcode::SUBI:
  case Opcode::ANDI:
  case Opcode::ORI:
  case Opcode::XORI:
  case Opcode::SHLI:
  case Opcode::SHRI:
  case Opcode::MULI: {
    Opcode Base = static_cast<Opcode>(static_cast<uint8_t>(I.Op) - 0x10);
    if (!Arith(Base, reg(I.Rd), static_cast<uint64_t>(I.Imm), true, I.Rd)) {
      Res.K = ExecResult::Kind::Fault;
      Res.FaultMsg = "division by zero";
    }
    break;
  }
  case Opcode::CMPI:
    Arith(Opcode::CMP, reg(I.Rd), static_cast<uint64_t>(I.Imm), false, I.Rd);
    break;
  case Opcode::TESTI:
    Arith(Opcode::TEST, reg(I.Rd), static_cast<uint64_t>(I.Imm), false, I.Rd);
    break;

  case Opcode::JMP:
    Res.K = ExecResult::Kind::Branch;
    Res.Target = I.branchTarget(OrigPC);
    break;
  case Opcode::JE:
  case Opcode::JNE:
  case Opcode::JL:
  case Opcode::JLE:
  case Opcode::JG:
  case Opcode::JGE:
  case Opcode::JB:
  case Opcode::JAE: {
    bool Taken = false;
    switch (I.Op) {
    case Opcode::JE: Taken = ZF; break;
    case Opcode::JNE: Taken = !ZF; break;
    case Opcode::JL: Taken = SF != OF; break;
    case Opcode::JLE: Taken = ZF || SF != OF; break;
    case Opcode::JG: Taken = !ZF && SF == OF; break;
    case Opcode::JGE: Taken = SF == OF; break;
    case Opcode::JB: Taken = CF; break;
    case Opcode::JAE: Taken = !CF; break;
    default: JZ_UNREACHABLE("not a Jcc");
    }
    if (Taken) {
      Res.K = ExecResult::Kind::Branch;
      Res.Target = I.branchTarget(OrigPC);
    }
    break;
  }
  case Opcode::CALL:
    Cycles += cost::MemAccess;
    push64(OrigPC + I.Size);
    Res.K = ExecResult::Kind::Call;
    Res.Target = I.branchTarget(OrigPC);
    break;
  case Opcode::CALLR:
    Cycles += cost::MemAccess;
    Res.Target = reg(I.Rd);
    push64(OrigPC + I.Size);
    Res.K = ExecResult::Kind::Call;
    break;
  case Opcode::CALLM:
    Cycles += 2 * cost::MemAccess;
    Res.Target = Mem.read64(effectiveAddr(I.Mem, OrigPC, I.Size));
    push64(OrigPC + I.Size);
    Res.K = ExecResult::Kind::Call;
    break;
  case Opcode::JMPR:
    Res.K = ExecResult::Kind::Branch;
    Res.Target = reg(I.Rd);
    break;
  case Opcode::JMPM:
    Cycles += cost::MemAccess;
    Res.K = ExecResult::Kind::Branch;
    Res.Target = Mem.read64(effectiveAddr(I.Mem, OrigPC, I.Size));
    break;
  case Opcode::RET:
    Cycles += cost::MemAccess;
    Res.Target = pop64();
    Res.K = (Res.Target == layout::ExitSentinel ||
             Res.Target == layout::ThreadExitSentinel)
                ? ExecResult::Kind::Exited
                : ExecResult::Kind::Return;
    break;
  case Opcode::PUSH:
    Cycles += cost::MemAccess;
    push64(reg(I.Rd));
    break;
  case Opcode::POP:
    Cycles += cost::MemAccess;
    reg(I.Rd) = pop64();
    break;
  case Opcode::PUSHI64:
    Cycles += cost::MemAccess;
    push64(static_cast<uint64_t>(I.Imm));
    break;
  case Opcode::SYSCALL:
    Cycles += cost::Syscall;
    switch (Syscalls->handleSyscall(*this, static_cast<uint8_t>(I.Imm))) {
    case SyscallOutcome::Continue:
      break;
    case SyscallOutcome::ExitProcess:
      Res.K = ExecResult::Kind::Exited;
      Res.Target = layout::ExitSentinel;
      break;
    case SyscallOutcome::ExitThread:
      Res.K = ExecResult::Kind::Exited;
      Res.Target = layout::ThreadExitSentinel;
      break;
    case SyscallOutcome::Block:
      Res.K = ExecResult::Kind::Blocked;
      break;
    }
    break;
  case Opcode::TRAP:
    Res.K = ExecResult::Kind::Trap;
    Res.TrapCode = static_cast<uint8_t>(I.Imm);
    break;
  case Opcode::CAS: {
    Cycles += 2 * cost::MemAccess;
    uint64_t Old = reg(I.Rd);
    bool Swapped = Mem.cas64(effectiveAddr(I.Mem, OrigPC, I.Size), Old,
                             reg(I.Rs));
    ZF = Swapped;
    SF = static_cast<int64_t>(Old) < 0;
    CF = OF = false;
    reg(I.Rd) = Old;
    break;
  }
  }
  return Res;
}
