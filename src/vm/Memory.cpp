//===- vm/Memory.cpp ------------------------------------------------------==//

#include "vm/Memory.h"

#include <cstring>
#include <string>

using namespace janitizer;

GuestMemory::Page &GuestMemory::pageFor(uint64_t Addr) {
  uint64_t Key = Addr / PageSize;
  auto It = Pages.find(Key);
  if (It == Pages.end()) {
    auto P = std::make_unique<Page>();
    P->fill(0);
    It = Pages.emplace(Key, std::move(P)).first;
  }
  return *It->second;
}

const GuestMemory::Page *GuestMemory::pageForRead(uint64_t Addr) const {
  auto It = Pages.find(Addr / PageSize);
  return It == Pages.end() ? nullptr : It->second.get();
}

uint8_t GuestMemory::read8(uint64_t Addr) const {
  const Page *P = pageForRead(Addr);
  return P ? (*P)[Addr % PageSize] : 0;
}

void GuestMemory::write8(uint64_t Addr, uint8_t V) {
  pageFor(Addr)[Addr % PageSize] = V;
}

uint16_t GuestMemory::read16(uint64_t Addr) const {
  return static_cast<uint16_t>(read8(Addr) | (read8(Addr + 1) << 8));
}

uint32_t GuestMemory::read32(uint64_t Addr) const {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | read8(Addr + static_cast<uint64_t>(I));
  return V;
}

uint64_t GuestMemory::read64(uint64_t Addr) const {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | read8(Addr + static_cast<uint64_t>(I));
  return V;
}

void GuestMemory::write16(uint64_t Addr, uint16_t V) {
  write8(Addr, static_cast<uint8_t>(V));
  write8(Addr + 1, static_cast<uint8_t>(V >> 8));
}

void GuestMemory::write32(uint64_t Addr, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    write8(Addr + static_cast<uint64_t>(I), static_cast<uint8_t>(V >> (8 * I)));
}

void GuestMemory::write64(uint64_t Addr, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    write8(Addr + static_cast<uint64_t>(I), static_cast<uint8_t>(V >> (8 * I)));
}

std::vector<uint8_t> GuestMemory::readBytes(uint64_t Addr, uint64_t Len) const {
  std::vector<uint8_t> Out(Len);
  for (uint64_t I = 0; I < Len; ++I)
    Out[I] = read8(Addr + I);
  return Out;
}

void GuestMemory::writeBytes(uint64_t Addr, const uint8_t *Bytes,
                             uint64_t Len) {
  for (uint64_t I = 0; I < Len; ++I)
    write8(Addr + I, Bytes[I]);
}

std::string GuestMemory::readCString(uint64_t Addr) const {
  std::string S;
  for (uint64_t I = 0; I < 4096; ++I) {
    char C = static_cast<char>(read8(Addr + I));
    if (C == 0)
      break;
    S += C;
  }
  return S;
}

void GuestMemory::fill(uint64_t Addr, uint64_t Len, uint8_t V) {
  for (uint64_t I = 0; I < Len; ++I)
    write8(Addr + I, V);
}

void GuestMemory::addExecRegion(uint64_t Addr, uint64_t Len) {
  ExecRegions.push_back({Addr, Len});
}

bool GuestMemory::isExecutable(uint64_t Addr) const {
  for (const Region &R : ExecRegions)
    if (Addr >= R.Addr && Addr < R.Addr + R.Len)
      return true;
  return false;
}
