//===- vm/Memory.cpp ------------------------------------------------------==//

#include "vm/Memory.h"

#include <algorithm>
#include <cstring>

using namespace janitizer;

GuestMemory::GuestMemory() : Flat(FlatLimit / PageSize) {}

GuestMemory::~GuestMemory() {
  for (std::atomic<Page *> &Slot : Flat)
    delete Slot.load(std::memory_order_relaxed);
  for (auto &[_, P] : Overflow)
    delete P;
}

GuestMemory::Page &GuestMemory::pageFor(uint64_t Addr) {
  uint64_t Key = Addr / PageSize;
  if (Addr < FlatLimit) {
    std::atomic<Page *> &Slot = Flat[Key];
    Page *P = Slot.load(std::memory_order_acquire);
    if (P)
      return *P;
    // First touch: materialize a zero page and race to install it. The
    // loser frees its copy and adopts the winner's — pages are only ever
    // installed, never replaced or removed, so the winner stays valid.
    Page *Fresh = new Page();
    if (Slot.compare_exchange_strong(P, Fresh, std::memory_order_acq_rel))
      return *Fresh;
    delete Fresh;
    return *P;
  }
  std::lock_guard<std::mutex> Lock(SlowMtx);
  Page *&P = Overflow[Key];
  if (!P)
    P = new Page();
  return *P;
}

const GuestMemory::Page *GuestMemory::pageForRead(uint64_t Addr) const {
  uint64_t Key = Addr / PageSize;
  if (Addr < FlatLimit)
    return Flat[Key].load(std::memory_order_acquire);
  std::lock_guard<std::mutex> Lock(SlowMtx);
  auto It = Overflow.find(Key);
  return It == Overflow.end() ? nullptr : It->second;
}

uint16_t GuestMemory::read16(uint64_t Addr) const {
  return static_cast<uint16_t>(read8(Addr) | (read8(Addr + 1) << 8));
}

uint32_t GuestMemory::read32(uint64_t Addr) const {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | read8(Addr + static_cast<uint64_t>(I));
  return V;
}

uint64_t GuestMemory::read64(uint64_t Addr) const {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | read8(Addr + static_cast<uint64_t>(I));
  return V;
}

void GuestMemory::write16(uint64_t Addr, uint16_t V) {
  write8(Addr, static_cast<uint8_t>(V));
  write8(Addr + 1, static_cast<uint8_t>(V >> 8));
}

void GuestMemory::write32(uint64_t Addr, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    write8(Addr + static_cast<uint64_t>(I), static_cast<uint8_t>(V >> (8 * I)));
}

void GuestMemory::write64(uint64_t Addr, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    write8(Addr + static_cast<uint64_t>(I), static_cast<uint8_t>(V >> (8 * I)));
}

bool GuestMemory::cas64(uint64_t Addr, uint64_t &Expected, uint64_t Desired) {
  std::lock_guard<std::mutex> Lock(CasMtx);
  uint64_t Cur = read64(Addr);
  if (Cur == Expected) {
    write64(Addr, Desired);
    return true;
  }
  Expected = Cur;
  return false;
}

std::vector<uint8_t> GuestMemory::readBytes(uint64_t Addr, uint64_t Len) const {
  std::vector<uint8_t> Out(Len);
  for (uint64_t I = 0; I < Len; ++I)
    Out[I] = read8(Addr + I);
  return Out;
}

void GuestMemory::writeBytes(uint64_t Addr, const uint8_t *Bytes,
                             uint64_t Len) {
  for (uint64_t I = 0; I < Len; ++I)
    write8(Addr + I, Bytes[I]);
}

std::string GuestMemory::readCString(uint64_t Addr) const {
  std::string S;
  for (uint64_t I = 0; I < 4096; ++I) {
    char C = static_cast<char>(read8(Addr + I));
    if (C == 0)
      break;
    S += C;
  }
  return S;
}

void GuestMemory::fill(uint64_t Addr, uint64_t Len, uint8_t V) {
  for (uint64_t I = 0; I < Len; ++I)
    write8(Addr + I, V);
}

void GuestMemory::addExecRegion(uint64_t Addr, uint64_t Len) {
  std::lock_guard<std::mutex> Lock(SlowMtx);
  ExecRegions.push_back({Addr, Len});
}

bool GuestMemory::isExecutable(uint64_t Addr) const {
  std::lock_guard<std::mutex> Lock(SlowMtx);
  for (const Region &R : ExecRegions)
    if (Addr >= R.Addr && Addr < R.Addr + R.Len)
      return true;
  return false;
}

std::vector<GuestMemory::Region> GuestMemory::execRegions() const {
  std::lock_guard<std::mutex> Lock(SlowMtx);
  return ExecRegions;
}

std::vector<GuestMemory::PageImage> GuestMemory::dumpPages() const {
  auto CopyPage = [](uint64_t Key, const Page &P,
                     std::vector<PageImage> &Out) {
    PageImage Img;
    Img.Addr = Key * PageSize;
    Img.Bytes.resize(PageSize);
    bool AnySet = false;
    for (uint64_t I = 0; I < PageSize; ++I) {
      Img.Bytes[I] = P.B[I].load(std::memory_order_relaxed);
      AnySet |= Img.Bytes[I] != 0;
    }
    if (AnySet)
      Out.push_back(std::move(Img));
  };

  std::vector<PageImage> Out;
  for (uint64_t Key = 0; Key < Flat.size(); ++Key)
    if (const Page *P = Flat[Key].load(std::memory_order_acquire))
      CopyPage(Key, *P, Out);

  // Overflow pages sorted by key so the dump (and thus the state-file
  // checksum) is deterministic regardless of map iteration order.
  std::vector<std::pair<uint64_t, const Page *>> Cold;
  {
    std::lock_guard<std::mutex> Lock(SlowMtx);
    Cold.reserve(Overflow.size());
    for (const auto &[Key, P] : Overflow)
      Cold.emplace_back(Key, P);
  }
  std::sort(Cold.begin(), Cold.end());
  for (const auto &[Key, P] : Cold)
    CopyPage(Key, *P, Out);
  return Out;
}
