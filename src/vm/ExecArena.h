//===- vm/ExecArena.h - W^X executable code arena --------------------------===//
///
/// \file
/// Page-granular allocator for host-executable code (the template-JIT tier
/// of the DBI engine, DESIGN.md §5i). Enforces W^X: a span is filled while
/// writable and private, then sealed read+execute before its entry point is
/// published; it is never writable and executable at the same time.
///
/// Each allocation gets its own mmap'd span so concurrent publish/release
/// from different dispatcher threads never flip protections on a page that
/// another thread's live code shares. Released spans are unmapped
/// immediately — the caller (the code cache) guarantees via epoch-based
/// reclamation that no thread can still be executing them.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_VM_EXECARENA_H
#define JANITIZER_VM_EXECARENA_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace janitizer {

class ExecArena {
public:
  /// \p MaxBytes caps the total live executable bytes; publish() fails
  /// (returns null) once the cap would be exceeded, and the caller falls
  /// back to its non-jitted tier. 0 means unlimited.
  explicit ExecArena(size_t MaxBytes = DefaultMaxBytes)
      : MaxBytes(MaxBytes) {}
  ~ExecArena();
  ExecArena(const ExecArena &) = delete;
  ExecArena &operator=(const ExecArena &) = delete;

  /// True when this host can map executable memory at all (the jit tier is
  /// disabled wholesale when it cannot).
  static bool supported();

  /// Copies \p Len bytes of machine code into a fresh span and seals it
  /// read+execute. Returns the executable base address, or null on
  /// exhaustion / mmap failure. Thread-safe.
  const void *publish(const void *Code, size_t Len);

  /// Unmaps a span previously returned by publish(). The caller must
  /// guarantee no thread is executing it. Thread-safe.
  void release(const void *Span);

  /// Live executable bytes (page-rounded).
  uint64_t liveBytes() const {
    return Live.load(std::memory_order_relaxed);
  }
  /// High-water mark of liveBytes().
  uint64_t peakBytes() const {
    return Peak.load(std::memory_order_relaxed);
  }

  static constexpr size_t DefaultMaxBytes = 64u << 20;

private:
  size_t MaxBytes;
  std::atomic<uint64_t> Live{0};
  std::atomic<uint64_t> Peak{0};
  mutable std::mutex Mtx;
  std::unordered_map<const void *, size_t> Spans; ///< base -> mapped size
};

} // namespace janitizer

#endif // JANITIZER_VM_EXECARENA_H
