//===- vm/Process.h - Guest process: loader, syscalls, native runner ------===//
///
/// \file
/// A Process owns a Machine and the set of loaded modules. The embedded
/// program loader mirrors the ELF/ld.so model the paper targets:
///
///  - non-PIC executables map at their link base; PIC modules (shared
///    objects and PIE executables) get a load-time slide;
///  - DT_NEEDED-style dependencies are loaded recursively, then dynamic
///    relocations (rebase + symbol-absolute) are applied;
///  - imported function calls go through PLT stubs whose GOT slots start
///    out pointing at lazy-binding stubs; first use traps into the
///    Resolve service which patches the slot and *returns* into the
///    resolved function — the ld.so idiom §4.2.3 of the paper handles;
///  - dlopen/dlsym load additional modules at run time;
///  - MapCode makes dynamically generated (JIT) code executable.
///
/// Tools observe module loads and code mapping through ModuleObserver.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_VM_PROCESS_H
#define JANITIZER_VM_PROCESS_H

#include "jelf/Module.h"
#include "support/Error.h"
#include "vm/Machine.h"
#include "vm/Syscalls.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace janitizer {

/// An in-memory "filesystem" of JELF modules keyed by name.
class ModuleStore {
public:
  void add(Module M) { Mods[M.Name] = std::move(M); }
  const Module *find(const std::string &Name) const {
    auto It = Mods.find(Name);
    return It == Mods.end() ? nullptr : &It->second;
  }
  std::vector<const Module *> all() const {
    std::vector<const Module *> Out;
    for (const auto &[_, M] : Mods)
      Out.push_back(&M);
    return Out;
  }

private:
  std::map<std::string, Module> Mods;
};

struct LoadedModule {
  const Module *Mod = nullptr;
  unsigned Id = 0;
  uint64_t LoadBase = 0;
  uint64_t LoadEnd = 0;
  int64_t Slide = 0; ///< LoadBase - LinkBase

  uint64_t toRuntime(uint64_t LinkVA) const {
    return static_cast<uint64_t>(static_cast<int64_t>(LinkVA) + Slide);
  }
  uint64_t toLink(uint64_t RuntimeVA) const {
    return static_cast<uint64_t>(static_cast<int64_t>(RuntimeVA) - Slide);
  }
  bool containsRuntime(uint64_t VA) const {
    return VA >= LoadBase && VA < LoadEnd;
  }
};

class Process;

/// Notifications tools subscribe to.
class ModuleObserver {
public:
  virtual ~ModuleObserver() = default;
  /// A module has been mapped and relocated.
  virtual void onModuleLoad(Process &P, const LoadedModule &LM) {}
  /// A module is about to be unloaded (dlclose); \p LM is still valid for
  /// the duration of the call. Tools drop per-module state here.
  virtual void onModuleUnload(Process &P, const LoadedModule &LM) {}
  /// A region of dynamically generated code became executable.
  virtual void onCodeMapped(Process &P, uint64_t Addr, uint64_t Len) {}
};

/// Result of running a process to completion.
struct RunResult {
  /// TierExit is produced only by a DbiEngine with a tier-exit predicate
  /// installed (AOT runner): the dispatcher was about to enter statically
  /// rewritten code, so control returns to the native tier with the
  /// machine PC set to the exit target.
  enum class Status : uint8_t { Exited, Trapped, Faulted, StepLimit, TierExit };
  Status St = Status::Exited;
  int ExitCode = 0;
  uint8_t TrapCode = 0;
  uint64_t TrapPC = 0;
  std::string FaultMsg;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
};

/// Execution watchdog budgets for one run (DESIGN.md §5h). A hostile guest
/// — a runaway loop, a cycle bomb — must never hang the host: when a
/// budget trips, the run ends as Status::Faulted with a structured
/// "watchdog: ..." diagnostic (tid, PC, count) instead of the host
/// sharing the guest's fate. Zero means unlimited for the cycle and
/// wall-clock budgets; MaxSteps keeps the historical default.
struct RunBudget {
  /// Interpreter/dispatcher steps across all guest threads.
  uint64_t MaxSteps = 1ull << 32;
  /// Simulated cycles per guest thread (the cost-model domain; checked
  /// against each thread's own Machine::Cycles).
  uint64_t MaxCycles = 0;
  /// Host wall-clock milliseconds for the whole run.
  uint64_t MaxWallMs = 0;
  /// Cooperative checkpoint: stop cleanly (Status::StepLimit) once this
  /// many steps ran, at the next dispatcher entry — the snapshot point
  /// used by StateFile round-trip tests. 0 disables.
  uint64_t CheckpointAfterSteps = 0;

  /// Budgets from JZ_MAX_GUEST_STEPS / JZ_MAX_GUEST_CYCLES /
  /// JZ_MAX_WALL_MS on top of the defaults.
  static RunBudget fromEnv();
};

/// One guest thread: the main thread (Tid 0) runs on the Process-owned
/// machine; spawned threads own a sibling machine sharing guest memory.
struct GuestThread {
  enum class State : uint8_t { Runnable, Blocked, Exited };
  enum class BlockKind : uint8_t { None, Join, Futex };

  uint32_t Tid = 0;
  std::unique_ptr<Machine> Mach; ///< null for Tid 0 (Process::M)
  State St = State::Runnable;
  uint64_t ExitValue = 0;
  BlockKind BK = BlockKind::None;
  uint64_t BlockTarget = 0; ///< joined tid, or futex address
};

class Process : public SyscallHandler {
public:
  explicit Process(const ModuleStore &Store);

  Machine M;

  /// Loads the executable \p Name and its dependency closure, builds the
  /// startup trampoline (init calls + entry) and prepares machine state.
  Error loadProgram(const std::string &Name);

  /// Loads one module (for dlopen or for loadProgram). Returns the loaded
  /// module or nullptr (with \p Err set).
  const LoadedModule *loadModule(const std::string &Name, Error &Err);

  /// Unloads a shared object (dlclose): notifies observers while the
  /// module is still registered, then removes it from the loaded set and
  /// drops its decoded-instruction cache entries. Executables cannot be
  /// unloaded. Like a real dlclose, any bindings other modules still hold
  /// into the unloaded module become the caller's problem; the backing
  /// memory itself is not recycled (the guest address space is
  /// single-use).
  Error unloadModule(const std::string &Name);

  /// Runs natively (interpreter only, no instrumentation).
  RunResult runNative(uint64_t MaxSteps = 1ull << 32);
  /// Native run under full watchdog budgets (steps, per-thread cycles,
  /// wall clock, cooperative checkpoint).
  RunResult runNative(const RunBudget &Budget);

  /// Registers a module observer (not owned).
  void addObserver(ModuleObserver *O) { Observers.push_back(O); }

  // --- introspection ------------------------------------------------------
  const std::deque<LoadedModule> &modules() const { return Loaded; }
  const LoadedModule *moduleAt(uint64_t RuntimeVA) const;
  const LoadedModule *moduleByName(const std::string &Name) const;
  /// Looks a module up by its id. Ids are never reused, so a dlopen handle
  /// stays dead after the module is unloaded.
  const LoadedModule *moduleById(unsigned Id) const;
  /// Resolves an exported symbol across all loaded modules, in load order.
  uint64_t resolveSymbol(const std::string &Name) const;
  const std::string &output() const { return Output; }
  uint64_t startPC() const { return TrampolineVA; }
  /// Heap bounds used so far ([HeapBase, brk)).
  uint64_t brk() const { return Brk; }
  /// Moves the break; used by host-side allocators (tool runtimes).
  uint64_t hostSbrk(uint64_t Delta);

  // --- SyscallHandler -----------------------------------------------------
  SyscallOutcome handleSyscall(Machine &M, uint8_t Num) override;

  int exitCode() const { return ExitCodeVal.load(std::memory_order_relaxed); }

  /// Decoded-instruction cache for fetch/decode at \p PC. Returns false on
  /// undecodable bytes.
  bool fetch(uint64_t PC, Instruction &I);

  /// Runtime-VA ranges the *native* interpreter refuses to execute: a PC
  /// inside one ends the run with Status::Trapped / TrapCode::VacatedExec
  /// at that PC. The AOT runner carpets the vacated original code of
  /// rewritten modules this way; the bytes stay intact and readable (the
  /// DBI tier's fetches are unaffected — only the interpreter loop
  /// checks). Empty by default, so plain native runs pay one branch.
  void setNoExecRanges(std::vector<std::pair<uint64_t, uint64_t>> R) {
    NoExecRanges = std::move(R);
  }

  // --- guest threads ------------------------------------------------------
  /// Called (under no Process lock) right after ThreadCreate registers a
  /// new guest thread; the DBI engine uses it to start a host thread.
  using ThreadSpawnFn = std::function<void(uint32_t Tid, Machine &TM)>;
  void setThreadSpawnFn(ThreadSpawnFn F) { SpawnFn = std::move(F); }

  /// Maximum guest threads (JZ_MAX_GUEST_THREADS, default 16, clamp
  /// [1,64]); 1 disables ThreadCreate entirely.
  unsigned maxGuestThreads() const { return MaxThreads; }
  /// Number of guest threads ever created (>= 1 after loadProgram).
  uint32_t threadCount() const;
  /// The machine of guest thread \p Tid (must exist).
  Machine &machineForTid(uint32_t Tid);

  /// Records that \p TM's thread finished (ThreadExit or RET to the thread
  /// exit sentinel); its R0 becomes the join value, joiners are woken.
  void noteThreadExit(Machine &TM);
  /// Blocks the calling host thread until guest thread \p TM is runnable
  /// again (or the process is stopping). Used by the DBI engine after a
  /// Blocked exec result; the blocked syscall is re-issued on return.
  /// Returns false when every live guest thread is blocked — a guest
  /// deadlock nobody can resolve — so the caller can fault the run.
  bool waitWhileBlocked(Machine &TM);
  /// Releases every blocked thread so host threads can exit (process
  /// teardown / first thread to exit the process wins).
  void requestStop();
  bool stopRequested() const { return StopAll.load(std::memory_order_acquire); }

  /// Totals across every guest thread's machine.
  uint64_t totalCycles() const;
  uint64_t totalRetired() const;

  /// Structured description of a guest deadlock: one line per live
  /// blocked thread with its tid, PC, and what it blocks on (futex word
  /// address + current value, or the joined tid). Built when
  /// waitWhileBlocked / runNative detect that no runnable thread exists.
  std::string deadlockDiagnostic() const;

  /// Live (non-exited) guest threads other than the main thread, as
  /// (tid, machine) pairs. After a StateFile restore the DBI engine uses
  /// this to respawn one host thread per restored sibling.
  std::vector<std::pair<uint32_t, Machine *>> liveSiblings();

private:
  friend class StateFile; ///< serializes/rebuilds the private state below

  Error mapAndRelocate(const std::vector<const Module *> &NewMods);
  void buildTrampoline(const std::vector<uint64_t> &InitVAs, uint64_t Entry);
  GuestThread *threadByTid(uint32_t Tid); ///< requires ThreadMtx held
  Machine &machineOf(GuestThread &T) { return T.Mach ? *T.Mach : M; }
  const Machine &machineOf(const GuestThread &T) const {
    return T.Mach ? *T.Mach : M;
  }
  /// Marks \p Tid exited with \p Value and wakes joiners (ThreadMtx held).
  void markThreadExitedLocked(uint32_t Tid, uint64_t Value);

  const ModuleStore &Store;
  std::deque<LoadedModule> Loaded;
  unsigned NextModuleId = 0; ///< monotonic; unload never frees an id
  std::vector<ModuleObserver *> Observers;
  std::string Output;
  std::atomic<uint64_t> Brk{layout::HeapBase};
  uint64_t NextPicBase = layout::PicRegionBase;
  uint64_t TrampolineVA = 0;
  std::atomic<int> ExitCodeVal{0};
  std::unordered_map<uint64_t, Instruction> DecodeCache;
  std::vector<std::pair<uint64_t, uint64_t>> NoExecRanges;

  // Thread table. ThreadMtx guards Threads' states and block bookkeeping;
  // the deque itself only grows, so machines stay referentially stable.
  std::deque<GuestThread> Threads;
  uint32_t NextTid = 1;
  unsigned MaxThreads = 16;
  ThreadSpawnFn SpawnFn;
  mutable std::mutex ThreadMtx;
  std::condition_variable ThreadCv;
  std::atomic<bool> StopAll{false};

  // Lock hierarchy (outermost first): LoaderMtx (serializes whole
  // load/unload operations including observer callbacks) > engine locks >
  // ModulesMtx (container structure) / DecodeMtx / OutMtx (leaves).
  std::recursive_mutex LoaderMtx;
  mutable std::shared_mutex ModulesMtx;
  std::mutex DecodeMtx;
  std::mutex OutMtx;
};

} // namespace janitizer

#endif // JANITIZER_VM_PROCESS_H
