//===- vm/Process.h - Guest process: loader, syscalls, native runner ------===//
///
/// \file
/// A Process owns a Machine and the set of loaded modules. The embedded
/// program loader mirrors the ELF/ld.so model the paper targets:
///
///  - non-PIC executables map at their link base; PIC modules (shared
///    objects and PIE executables) get a load-time slide;
///  - DT_NEEDED-style dependencies are loaded recursively, then dynamic
///    relocations (rebase + symbol-absolute) are applied;
///  - imported function calls go through PLT stubs whose GOT slots start
///    out pointing at lazy-binding stubs; first use traps into the
///    Resolve service which patches the slot and *returns* into the
///    resolved function — the ld.so idiom §4.2.3 of the paper handles;
///  - dlopen/dlsym load additional modules at run time;
///  - MapCode makes dynamically generated (JIT) code executable.
///
/// Tools observe module loads and code mapping through ModuleObserver.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_VM_PROCESS_H
#define JANITIZER_VM_PROCESS_H

#include "jelf/Module.h"
#include "support/Error.h"
#include "vm/Machine.h"
#include "vm/Syscalls.h"

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace janitizer {

/// An in-memory "filesystem" of JELF modules keyed by name.
class ModuleStore {
public:
  void add(Module M) { Mods[M.Name] = std::move(M); }
  const Module *find(const std::string &Name) const {
    auto It = Mods.find(Name);
    return It == Mods.end() ? nullptr : &It->second;
  }
  std::vector<const Module *> all() const {
    std::vector<const Module *> Out;
    for (const auto &[_, M] : Mods)
      Out.push_back(&M);
    return Out;
  }

private:
  std::map<std::string, Module> Mods;
};

struct LoadedModule {
  const Module *Mod = nullptr;
  unsigned Id = 0;
  uint64_t LoadBase = 0;
  uint64_t LoadEnd = 0;
  int64_t Slide = 0; ///< LoadBase - LinkBase

  uint64_t toRuntime(uint64_t LinkVA) const {
    return static_cast<uint64_t>(static_cast<int64_t>(LinkVA) + Slide);
  }
  uint64_t toLink(uint64_t RuntimeVA) const {
    return static_cast<uint64_t>(static_cast<int64_t>(RuntimeVA) - Slide);
  }
  bool containsRuntime(uint64_t VA) const {
    return VA >= LoadBase && VA < LoadEnd;
  }
};

class Process;

/// Notifications tools subscribe to.
class ModuleObserver {
public:
  virtual ~ModuleObserver() = default;
  /// A module has been mapped and relocated.
  virtual void onModuleLoad(Process &P, const LoadedModule &LM) {}
  /// A module is about to be unloaded (dlclose); \p LM is still valid for
  /// the duration of the call. Tools drop per-module state here.
  virtual void onModuleUnload(Process &P, const LoadedModule &LM) {}
  /// A region of dynamically generated code became executable.
  virtual void onCodeMapped(Process &P, uint64_t Addr, uint64_t Len) {}
};

/// Result of running a process to completion.
struct RunResult {
  enum class Status : uint8_t { Exited, Trapped, Faulted, StepLimit };
  Status St = Status::Exited;
  int ExitCode = 0;
  uint8_t TrapCode = 0;
  uint64_t TrapPC = 0;
  std::string FaultMsg;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
};

class Process : public SyscallHandler {
public:
  explicit Process(const ModuleStore &Store) : Store(Store) {}

  Machine M;

  /// Loads the executable \p Name and its dependency closure, builds the
  /// startup trampoline (init calls + entry) and prepares machine state.
  Error loadProgram(const std::string &Name);

  /// Loads one module (for dlopen or for loadProgram). Returns the loaded
  /// module or nullptr (with \p Err set).
  const LoadedModule *loadModule(const std::string &Name, Error &Err);

  /// Unloads a shared object (dlclose): notifies observers while the
  /// module is still registered, then removes it from the loaded set and
  /// drops its decoded-instruction cache entries. Executables cannot be
  /// unloaded. Like a real dlclose, any bindings other modules still hold
  /// into the unloaded module become the caller's problem; the backing
  /// memory itself is not recycled (the guest address space is
  /// single-use).
  Error unloadModule(const std::string &Name);

  /// Runs natively (interpreter only, no instrumentation).
  RunResult runNative(uint64_t MaxSteps = 1ull << 32);

  /// Registers a module observer (not owned).
  void addObserver(ModuleObserver *O) { Observers.push_back(O); }

  // --- introspection ------------------------------------------------------
  const std::deque<LoadedModule> &modules() const { return Loaded; }
  const LoadedModule *moduleAt(uint64_t RuntimeVA) const;
  const LoadedModule *moduleByName(const std::string &Name) const;
  /// Looks a module up by its id. Ids are never reused, so a dlopen handle
  /// stays dead after the module is unloaded.
  const LoadedModule *moduleById(unsigned Id) const;
  /// Resolves an exported symbol across all loaded modules, in load order.
  uint64_t resolveSymbol(const std::string &Name) const;
  const std::string &output() const { return Output; }
  uint64_t startPC() const { return TrampolineVA; }
  /// Heap bounds used so far ([HeapBase, brk)).
  uint64_t brk() const { return Brk; }
  /// Moves the break; used by host-side allocators (tool runtimes).
  uint64_t hostSbrk(uint64_t Delta);

  // --- SyscallHandler -----------------------------------------------------
  bool handleSyscall(uint8_t Num) override;

  int exitCode() const { return ExitCodeVal; }

  /// Decoded-instruction cache for fetch/decode at \p PC. Returns false on
  /// undecodable bytes.
  bool fetch(uint64_t PC, Instruction &I);

private:
  Error mapAndRelocate(const std::vector<const Module *> &NewMods);
  void buildTrampoline(const std::vector<uint64_t> &InitVAs, uint64_t Entry);

  const ModuleStore &Store;
  std::deque<LoadedModule> Loaded;
  unsigned NextModuleId = 0; ///< monotonic; unload never frees an id
  std::vector<ModuleObserver *> Observers;
  std::string Output;
  uint64_t Brk = layout::HeapBase;
  uint64_t NextPicBase = layout::PicRegionBase;
  uint64_t TrampolineVA = 0;
  int ExitCodeVal = 0;
  std::unordered_map<uint64_t, Instruction> DecodeCache;
};

} // namespace janitizer

#endif // JANITIZER_VM_PROCESS_H
