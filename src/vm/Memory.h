//===- vm/Memory.h - Sparse guest virtual memory ---------------------------===//
///
/// \file
/// The guest address space: a sparse, page-granular byte store. Pages are
/// materialized (zero-filled) on first touch. Executable permissions are
/// tracked per region so dynamically generated code must be made executable
/// through the MapCode service before it can run.
///
/// The store is safe for concurrent access by multiple guest threads
/// (DESIGN.md §5g): bytes are atomic, the page table for the hot address
/// range is a flat array of CAS-installed page pointers (lock-free on both
/// the read and the install path), and only the cold paths — overflow pages
/// above FlatLimit, executable-region bookkeeping, and the cas64 service
/// backing the guest CAS instruction — take a lock. Individual byte
/// accesses are atomic; multi-byte accessors are composed of byte accesses,
/// so racing guest threads can observe torn multi-byte values exactly as
/// unsynchronized code can on real hardware. Guest code that needs
/// atomicity uses the CAS instruction (serialized via cas64).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_VM_MEMORY_H
#define JANITIZER_VM_MEMORY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace janitizer {

class GuestMemory {
public:
  static constexpr uint64_t PageSize = 4096;
  /// Upper bound of the flat page table: everything the layout places —
  /// trampoline, modules, stacks, heap and the sanitizer shadow — lies
  /// below it. Addresses at or above fall back to a mutex-guarded
  /// overflow map (rare: sentinel-adjacent probes and hostile pointers).
  static constexpr uint64_t FlatLimit = 0x22400000;

  GuestMemory();
  ~GuestMemory();
  GuestMemory(const GuestMemory &) = delete;
  GuestMemory &operator=(const GuestMemory &) = delete;

  uint8_t read8(uint64_t Addr) const {
    const Page *P = pageForRead(Addr);
    return P ? P->B[Addr % PageSize].load(std::memory_order_relaxed) : 0;
  }
  uint16_t read16(uint64_t Addr) const;
  uint32_t read32(uint64_t Addr) const;
  uint64_t read64(uint64_t Addr) const;

  void write8(uint64_t Addr, uint8_t V) {
    pageFor(Addr).B[Addr % PageSize].store(V, std::memory_order_relaxed);
  }
  void write16(uint64_t Addr, uint16_t V);
  void write32(uint64_t Addr, uint32_t V);
  void write64(uint64_t Addr, uint64_t V);

  /// Atomic compare-and-swap of the 64-bit word at \p Addr: when the word
  /// equals \p Expected it is replaced by \p Desired and true is returned;
  /// otherwise \p Expected receives the observed value. All cas64 calls
  /// are serialized against each other, giving guest CAS instructions
  /// real mutual atomicity.
  bool cas64(uint64_t Addr, uint64_t &Expected, uint64_t Desired);

  /// Reads \p Len bytes starting at \p Addr.
  std::vector<uint8_t> readBytes(uint64_t Addr, uint64_t Len) const;

  /// Copies \p Bytes into memory at \p Addr.
  void writeBytes(uint64_t Addr, const uint8_t *Bytes, uint64_t Len);

  /// Reads a NUL-terminated string (bounded at 4096 bytes).
  std::string readCString(uint64_t Addr) const;

  /// Fills [Addr, Addr+Len) with \p V.
  void fill(uint64_t Addr, uint64_t Len, uint8_t V);

  /// Marks [Addr, Addr+Len) executable.
  void addExecRegion(uint64_t Addr, uint64_t Len);

  /// True if \p Addr lies in an executable region.
  bool isExecutable(uint64_t Addr) const;

  /// The executable regions, in registration order (snapshot).
  struct Region {
    uint64_t Addr;
    uint64_t Len;
  };
  std::vector<Region> execRegions() const;

  /// One materialized, non-zero page: its base address plus a plain-byte
  /// copy of its contents.
  struct PageImage {
    uint64_t Addr;
    std::vector<uint8_t> Bytes; ///< exactly PageSize bytes
  };
  /// Copies out every materialized page that holds at least one non-zero
  /// byte, in ascending address order — the memory half of a state-file
  /// snapshot (src/vm/StateFile). All-zero pages are skipped: restore
  /// starts from a fresh (all-zero) address space, so they carry no
  /// information. Callers must quiesce guest threads first; the copy is
  /// per-byte relaxed, not atomic across the page.
  std::vector<PageImage> dumpPages() const;

private:
  struct Page {
    std::atomic<uint8_t> B[PageSize]; ///< value-initialized to zero
  };
  Page &pageFor(uint64_t Addr);
  const Page *pageForRead(uint64_t Addr) const;

  /// Flat table of CAS-installed page pointers for [0, FlatLimit).
  std::vector<std::atomic<Page *>> Flat;
  /// Pages at or above FlatLimit, and the exec-region list.
  mutable std::mutex SlowMtx;
  std::unordered_map<uint64_t, Page *> Overflow;
  std::vector<Region> ExecRegions;
  /// Serializes cas64 (guest CAS instructions).
  std::mutex CasMtx;
};

} // namespace janitizer

#endif // JANITIZER_VM_MEMORY_H
