//===- vm/Memory.h - Sparse guest virtual memory ---------------------------===//
///
/// \file
/// The guest address space: a sparse, page-granular byte store. Pages are
/// materialized (zero-filled) on first touch. Executable permissions are
/// tracked per region so dynamically generated code must be made executable
/// through the MapCode service before it can run.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_VM_MEMORY_H
#define JANITIZER_VM_MEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace janitizer {

class GuestMemory {
public:
  static constexpr uint64_t PageSize = 4096;

  uint8_t read8(uint64_t Addr) const;
  uint16_t read16(uint64_t Addr) const;
  uint32_t read32(uint64_t Addr) const;
  uint64_t read64(uint64_t Addr) const;

  void write8(uint64_t Addr, uint8_t V);
  void write16(uint64_t Addr, uint16_t V);
  void write32(uint64_t Addr, uint32_t V);
  void write64(uint64_t Addr, uint64_t V);

  /// Reads \p Len bytes starting at \p Addr.
  std::vector<uint8_t> readBytes(uint64_t Addr, uint64_t Len) const;

  /// Copies \p Bytes into memory at \p Addr.
  void writeBytes(uint64_t Addr, const uint8_t *Bytes, uint64_t Len);

  /// Reads a NUL-terminated string (bounded at 4096 bytes).
  std::string readCString(uint64_t Addr) const;

  /// Fills [Addr, Addr+Len) with \p V.
  void fill(uint64_t Addr, uint64_t Len, uint8_t V);

  /// Marks [Addr, Addr+Len) executable.
  void addExecRegion(uint64_t Addr, uint64_t Len);

  /// True if \p Addr lies in an executable region.
  bool isExecutable(uint64_t Addr) const;

  /// The executable regions, in registration order.
  struct Region {
    uint64_t Addr;
    uint64_t Len;
  };
  const std::vector<Region> &execRegions() const { return ExecRegions; }

private:
  using Page = std::array<uint8_t, PageSize>;
  Page &pageFor(uint64_t Addr);
  const Page *pageForRead(uint64_t Addr) const;

  std::unordered_map<uint64_t, std::unique_ptr<Page>> Pages;
  std::vector<Region> ExecRegions;
};

} // namespace janitizer

#endif // JANITIZER_VM_MEMORY_H
