//===- vm/StateFile.cpp ---------------------------------------------------===//

#include "vm/StateFile.h"

#include "support/ByteReader.h"
#include "support/Endian.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Metrics.h"
#include "vm/Process.h"

#include <cstdio>
#include <cstring>

using namespace janitizer;

namespace {

constexpr size_t HeaderSize = 16; // magic u32, version u32, checksum u64

void writeStr(std::vector<uint8_t> &B, const std::string &S) {
  writeLE32(B, static_cast<uint32_t>(S.size()));
  B.insert(B.end(), S.begin(), S.end());
}

void writeBlob(std::vector<uint8_t> &B, const std::vector<uint8_t> &V) {
  writeLE32(B, static_cast<uint32_t>(V.size()));
  B.insert(B.end(), V.begin(), V.end());
}

void writeMachine(std::vector<uint8_t> &B, const Machine &M) {
  for (unsigned I = 0; I < NumRegs; ++I)
    writeLE64(B, M.R[I]);
  B.push_back(static_cast<uint8_t>(M.packFlags()));
  writeLE64(B, M.PC);
  writeLE64(B, M.Cycles);
  writeLE64(B, M.Retired);
}

void readMachine(ByteReader &R, Machine &M) {
  for (unsigned I = 0; I < NumRegs; ++I)
    M.R[I] = R.u64();
  M.unpackFlags(R.u8());
  M.PC = R.u64();
  M.Cycles = R.u64();
  M.Retired = R.u64();
}

} // namespace

std::vector<uint8_t> StateFile::capture(Process &P,
                                        const std::vector<ToolStateImage>
                                            &Tools) {
  std::vector<uint8_t> B;
  B.reserve(1 << 20);
  // Header; checksum patched once the payload is complete.
  writeLE32(B, Magic);
  writeLE32(B, Version);
  writeLE64(B, 0);

  // -- process scalars ------------------------------------------------------
  writeLE64(B, P.TrampolineVA);
  writeLE64(B, P.Brk.load(std::memory_order_relaxed));
  writeLE64(B, P.NextPicBase);
  writeLE32(B, P.NextModuleId);
  writeLE64(B, static_cast<uint64_t>(
                   static_cast<int64_t>(P.exitCode())));
  writeStr(B, P.output());

  // -- module table (re-bound by name on restore) ---------------------------
  {
    std::shared_lock<std::shared_mutex> Lock(P.ModulesMtx);
    writeLE32(B, static_cast<uint32_t>(P.Loaded.size()));
    for (const LoadedModule &LM : P.Loaded) {
      writeStr(B, LM.Mod->Name);
      writeLE32(B, LM.Id);
      writeLE64(B, LM.LoadBase);
      writeLE64(B, LM.LoadEnd);
      writeLE64(B, static_cast<uint64_t>(LM.Slide));
    }
  }

  // -- guest memory ---------------------------------------------------------
  {
    std::vector<GuestMemory::Region> Regions = P.M.Mem.execRegions();
    writeLE32(B, static_cast<uint32_t>(Regions.size()));
    for (const GuestMemory::Region &R : Regions) {
      writeLE64(B, R.Addr);
      writeLE64(B, R.Len);
    }
    std::vector<GuestMemory::PageImage> Pages = P.M.Mem.dumpPages();
    writeLE32(B, static_cast<uint32_t>(GuestMemory::PageSize));
    writeLE32(B, static_cast<uint32_t>(Pages.size()));
    for (const GuestMemory::PageImage &Pg : Pages) {
      writeLE64(B, Pg.Addr);
      B.insert(B.end(), Pg.Bytes.begin(), Pg.Bytes.end());
    }
  }

  // -- threads --------------------------------------------------------------
  {
    std::lock_guard<std::mutex> Lock(P.ThreadMtx);
    writeLE32(B, P.NextTid);
    writeLE32(B, static_cast<uint32_t>(P.Threads.size()));
    for (const GuestThread &T : P.Threads) {
      writeLE32(B, T.Tid);
      B.push_back(static_cast<uint8_t>(T.St));
      B.push_back(static_cast<uint8_t>(T.BK));
      writeLE64(B, T.BlockTarget);
      writeLE64(B, T.ExitValue);
      B.push_back(T.Mach ? 1 : 0);
      writeMachine(B, T.Mach ? *T.Mach : P.M);
    }
  }

  // -- tool payloads --------------------------------------------------------
  writeLE32(B, static_cast<uint32_t>(Tools.size()));
  for (const ToolStateImage &TI : Tools) {
    writeStr(B, TI.Name);
    writeBlob(B, TI.Bytes);
  }

  patchLE64(B, 8, hashBytes(B.data() + HeaderSize, B.size() - HeaderSize));

  MetricsRegistry &MR = MetricsRegistry::instance();
  MR.counter("jz.snapshot.captures").inc();
  MR.counter("jz.snapshot.bytes").inc(B.size());
  return B;
}

Error StateFile::validate(const std::vector<uint8_t> &Blob) {
  if (Blob.size() < HeaderSize)
    return makeError(formatString(
        "state file truncated: %zu bytes, need at least %zu header bytes",
        Blob.size(), HeaderSize));
  if (readLE32(Blob.data()) != Magic)
    return makeError(
        formatString("state file bad magic 0x%08x", readLE32(Blob.data())));
  uint32_t V = readLE32(Blob.data() + 4);
  if (V != Version)
    return makeError(
        formatString("state file version %u unsupported (want %u)", V,
                     Version));
  uint64_t Want = readLE64(Blob.data() + 8);
  uint64_t Got = hashBytes(Blob.data() + HeaderSize, Blob.size() - HeaderSize);
  if (Want != Got)
    return makeError(formatString(
        "state file checksum mismatch (stored 0x%016llx, computed 0x%016llx)",
        static_cast<unsigned long long>(Want),
        static_cast<unsigned long long>(Got)));
  return Error::success();
}

Error StateFile::restore(Process &P, const std::vector<uint8_t> &Blob,
                         std::vector<ToolStateImage> *ToolImages) {
  if (Error E = validate(Blob))
    return E.withContext("state restore");

  std::vector<uint8_t> Payload(Blob.begin() + HeaderSize, Blob.end());
  ByteReader R(Payload);

  // Parse everything into temporaries first; the Process is only touched
  // once the whole payload has deserialized cleanly.
  uint64_t TrampolineVA = R.u64();
  uint64_t Brk = R.u64();
  uint64_t NextPicBase = R.u64();
  uint32_t NextModuleId = R.u32();
  int ExitCode = static_cast<int>(static_cast<int64_t>(R.u64()));
  std::string Output = R.str();

  struct ModRec {
    std::string Name;
    uint32_t Id;
    uint64_t LoadBase, LoadEnd;
    int64_t Slide;
  };
  std::vector<ModRec> Mods;
  uint32_t NMods = R.u32();
  for (uint32_t I = 0; R.ok() && I < NMods; ++I) {
    ModRec M;
    M.Name = R.str();
    M.Id = R.u32();
    M.LoadBase = R.u64();
    M.LoadEnd = R.u64();
    M.Slide = static_cast<int64_t>(R.u64());
    Mods.push_back(std::move(M));
  }

  std::vector<GuestMemory::Region> Regions;
  uint32_t NRegions = R.u32();
  for (uint32_t I = 0; R.ok() && I < NRegions; ++I) {
    GuestMemory::Region Rg;
    Rg.Addr = R.u64();
    Rg.Len = R.u64();
    Regions.push_back(Rg);
  }

  uint32_t PageSize = R.u32();
  if (R.ok() && PageSize != GuestMemory::PageSize)
    return makeError(formatString(
        "state file page size %u does not match guest page size %u", PageSize,
        static_cast<uint32_t>(GuestMemory::PageSize)));
  std::vector<GuestMemory::PageImage> Pages;
  uint32_t NPages = R.u32();
  for (uint32_t I = 0; R.ok() && I < NPages; ++I) {
    GuestMemory::PageImage Pg;
    Pg.Addr = R.u64();
    Pg.Bytes.resize(GuestMemory::PageSize);
    R.raw(Pg.Bytes.data(), Pg.Bytes.size());
    Pages.push_back(std::move(Pg));
  }

  struct ThreadRec {
    uint32_t Tid;
    uint8_t St, BK;
    uint64_t BlockTarget, ExitValue;
    bool HasMach;
    std::unique_ptr<Machine> Mach; ///< parsed sibling state (HasMach)
    uint64_t MainR[NumRegs];       ///< parsed main-thread state (!HasMach)
    uint64_t MainFlags, MainPC, MainCycles, MainRetired;
  };
  uint32_t NextTid = R.u32();
  std::vector<ThreadRec> ThreadRecs;
  uint32_t NThreads = R.u32();
  for (uint32_t I = 0; R.ok() && I < NThreads; ++I) {
    ThreadRec T;
    T.Tid = R.u32();
    T.St = R.u8();
    T.BK = R.u8();
    T.BlockTarget = R.u64();
    T.ExitValue = R.u64();
    T.HasMach = R.u8() != 0;
    if (T.HasMach) {
      T.Mach = std::make_unique<Machine>(P.M.memHandle());
      readMachine(R, *T.Mach);
      T.Mach->Tid = T.Tid;
      T.Mach->Syscalls = &P;
    } else {
      for (unsigned J = 0; J < NumRegs; ++J)
        T.MainR[J] = R.u64();
      T.MainFlags = R.u8();
      T.MainPC = R.u64();
      T.MainCycles = R.u64();
      T.MainRetired = R.u64();
    }
    ThreadRecs.push_back(std::move(T));
  }

  std::vector<ToolStateImage> Tools;
  uint32_t NTools = R.u32();
  for (uint32_t I = 0; R.ok() && I < NTools; ++I) {
    ToolStateImage TI;
    TI.Name = R.str();
    TI.Bytes = R.bytes();
    Tools.push_back(std::move(TI));
  }

  if (!R.ok())
    return makeError("truncated state file payload");

  // Re-bind modules to the store by name before mutating anything.
  std::deque<LoadedModule> NewLoaded;
  for (const ModRec &MRec : Mods) {
    const Module *Mod = P.Store.find(MRec.Name);
    if (!Mod)
      return makeError(formatString(
          "state file references module '%s' absent from the module store",
          MRec.Name.c_str()));
    LoadedModule LM;
    LM.Mod = Mod;
    LM.Id = MRec.Id;
    LM.LoadBase = MRec.LoadBase;
    LM.LoadEnd = MRec.LoadEnd;
    LM.Slide = MRec.Slide;
    NewLoaded.push_back(LM);
  }

  // Application order (LoaderMtx held throughout, like a module load):
  // memory image first, then the module table, then observer replay —
  // tools and the engine rebuild their per-module derived state exactly as
  // during the original loads; any guest-memory writes they make (shadow
  // poison, GOT patches) are idempotent re-writes of restored bytes —
  // then loader scalars (re-pinned *after* replay in case an observer
  // bumped the break), and finally the thread table.
  std::lock_guard<std::recursive_mutex> LoaderLock(P.LoaderMtx);

  for (const GuestMemory::PageImage &Pg : Pages)
    P.M.Mem.writeBytes(Pg.Addr, Pg.Bytes.data(), Pg.Bytes.size());
  for (const GuestMemory::Region &Rg : Regions)
    P.M.Mem.addExecRegion(Rg.Addr, Rg.Len);

  {
    std::unique_lock<std::shared_mutex> Lock(P.ModulesMtx);
    P.Loaded = std::move(NewLoaded);
  }
  for (const LoadedModule &LM : P.modules())
    for (ModuleObserver *O : P.Observers)
      O->onModuleLoad(P, LM);

  P.TrampolineVA = TrampolineVA;
  P.Brk.store(Brk, std::memory_order_relaxed);
  P.NextPicBase = NextPicBase;
  P.NextModuleId = NextModuleId;
  P.ExitCodeVal.store(ExitCode, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(P.OutMtx);
    P.Output = std::move(Output);
  }
  {
    std::lock_guard<std::mutex> Lock(P.DecodeMtx);
    P.DecodeCache.clear();
  }

  {
    std::lock_guard<std::mutex> Lock(P.ThreadMtx);
    P.Threads.clear();
    P.NextTid = NextTid;
    P.StopAll.store(false, std::memory_order_release);
    for (ThreadRec &TR : ThreadRecs) {
      GuestThread T;
      T.Tid = TR.Tid;
      T.St = static_cast<GuestThread::State>(TR.St);
      T.BK = static_cast<GuestThread::BlockKind>(TR.BK);
      T.BlockTarget = TR.BlockTarget;
      T.ExitValue = TR.ExitValue;
      if (TR.HasMach) {
        T.Mach = std::move(TR.Mach);
      } else {
        for (unsigned J = 0; J < NumRegs; ++J)
          P.M.R[J] = TR.MainR[J];
        P.M.unpackFlags(TR.MainFlags);
        P.M.PC = TR.MainPC;
        P.M.Cycles = TR.MainCycles;
        P.M.Retired = TR.MainRetired;
        P.M.Tid = TR.Tid;
        P.M.Syscalls = &P;
      }
      P.Threads.push_back(std::move(T));
    }
  }

  if (ToolImages)
    *ToolImages = std::move(Tools);

  MetricsRegistry::instance().counter("jz.snapshot.restores").inc();
  return Error::success();
}

Error StateFile::writeFile(const std::string &Path,
                           const std::vector<uint8_t> &Blob) {
  if (FaultInjector::shouldFail("snapshot.write.enospc"))
    return makeError(formatString(
        "state file write '%s' failed: no space left on device (injected)",
        Path.c_str()));
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return makeError(
        formatString("cannot open state file '%s' for writing", Tmp.c_str()));
  size_t Written = Blob.empty() ? 0 : std::fwrite(Blob.data(), 1, Blob.size(), F);
  bool CloseOk = std::fclose(F) == 0;
  if (Written != Blob.size() || !CloseOk) {
    std::remove(Tmp.c_str());
    return makeError(formatString("short write to state file '%s' (%zu of %zu)",
                                  Tmp.c_str(), Written, Blob.size()));
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return makeError(formatString("cannot publish state file '%s'",
                                  Path.c_str()));
  }
  return Error::success();
}

ErrorOr<std::vector<uint8_t>> StateFile::readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return makeError(formatString("cannot open state file '%s'", Path.c_str()));
  std::vector<uint8_t> Blob;
  uint8_t Buf[1 << 16];
  for (;;) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    Blob.insert(Blob.end(), Buf, Buf + N);
    if (N < sizeof(Buf))
      break;
  }
  bool ReadOk = std::ferror(F) == 0;
  std::fclose(F);
  if (!ReadOk)
    return makeError(formatString("read error on state file '%s'",
                                  Path.c_str()));

  // Injected storage failures: a half-written file and a flipped bit. Both
  // must be caught by validation below, evicted, and degrade to cold start.
  if (FaultInjector::shouldFail("snapshot.read.truncated"))
    Blob.resize(Blob.size() / 2);
  if (FaultInjector::shouldFail("snapshot.read.corrupt") && !Blob.empty())
    Blob[Blob.size() / 2] ^= 0x40;

  if (Error E = validate(Blob)) {
    std::remove(Path.c_str()); // evict: never re-read a bad state file
    MetricsRegistry::instance().counter("jz.snapshot.corrupt_evicted").inc();
    return E.withContext(
        formatString("state file '%s' rejected and evicted", Path.c_str()));
  }
  return Blob;
}
