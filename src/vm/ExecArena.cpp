//===- vm/ExecArena.cpp ---------------------------------------------------==//

#include "vm/ExecArena.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define JZ_EXECARENA_HAVE_MMAP 1
#endif

using namespace janitizer;

#if JZ_EXECARENA_HAVE_MMAP

static size_t pageRound(size_t N) {
  static const size_t Page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return (N + Page - 1) & ~(Page - 1);
}

bool ExecArena::supported() {
  // Probe once: some hardened hosts refuse PROT_EXEC mappings outright.
  static const bool Ok = [] {
    void *P = mmap(nullptr, pageRound(1), PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (P == MAP_FAILED)
      return false;
    bool Sealed = mprotect(P, pageRound(1), PROT_READ | PROT_EXEC) == 0;
    munmap(P, pageRound(1));
    return Sealed;
  }();
  return Ok;
}

const void *ExecArena::publish(const void *Code, size_t Len) {
  if (!Len)
    return nullptr;
  size_t Mapped = pageRound(Len);
  // Reserve against the cap first so racing publishers cannot overshoot.
  uint64_t Prev = Live.fetch_add(Mapped, std::memory_order_relaxed);
  if (MaxBytes && Prev + Mapped > MaxBytes) {
    Live.fetch_sub(Mapped, std::memory_order_relaxed);
    return nullptr;
  }
  void *P = mmap(nullptr, Mapped, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED) {
    Live.fetch_sub(Mapped, std::memory_order_relaxed);
    return nullptr;
  }
  std::memcpy(P, Code, Len);
  // W^X flip: writable -> sealed, never both.
  if (mprotect(P, Mapped, PROT_READ | PROT_EXEC) != 0) {
    munmap(P, Mapped);
    Live.fetch_sub(Mapped, std::memory_order_relaxed);
    return nullptr;
  }
  uint64_t Now = Prev + Mapped;
  uint64_t Pk = Peak.load(std::memory_order_relaxed);
  while (Now > Pk &&
         !Peak.compare_exchange_weak(Pk, Now, std::memory_order_relaxed)) {
  }
  std::lock_guard<std::mutex> Lock(Mtx);
  Spans[P] = Mapped;
  return P;
}

void ExecArena::release(const void *Span) {
  if (!Span)
    return;
  size_t Mapped = 0;
  {
    std::lock_guard<std::mutex> Lock(Mtx);
    auto It = Spans.find(Span);
    if (It == Spans.end())
      return;
    Mapped = It->second;
    Spans.erase(It);
  }
  munmap(const_cast<void *>(Span), Mapped);
  Live.fetch_sub(Mapped, std::memory_order_relaxed);
}

ExecArena::~ExecArena() {
  std::lock_guard<std::mutex> Lock(Mtx);
  for (auto &[P, N] : Spans)
    munmap(const_cast<void *>(P), N);
  Spans.clear();
}

#else // !JZ_EXECARENA_HAVE_MMAP

bool ExecArena::supported() { return false; }
const void *ExecArena::publish(const void *, size_t) { return nullptr; }
void ExecArena::release(const void *) {}
ExecArena::~ExecArena() = default;

#endif
