//===- rewrite/AotRewriter.h - Rule-guided AOT static rewriting -----------===//
///
/// \file
/// Janitizer's ahead-of-time rewriting backend (DESIGN.md §5j): consumes
/// the StaticAnalyzer's rule files and emits statically rewritten JELF
/// modules with the security technique's instrumentation inlined — the
/// same check sequences the dynamic modifier would build, so a fully
/// analyzed module runs natively with zero dispatcher entries and reports
/// byte-identical violations.
///
/// Unlike the RetroWrite baseline (PIC-only, refuses on any coverage gap)
/// and the BinCFI baseline (rewrites everything, silently breaking on
/// sweep desync), the AOT backend degrades instead of refusing or
/// corrupting: every block the rules do not prove — and every forced
/// interposition entry — becomes a per-site TRAP(TierEnter) stub carrying
/// the original PC, and the tiered runner (AotRunner.h) falls back to the
/// DBI engine for exactly those regions.
///
/// Rule lowering:
///  - JASan rules (AsanCheck / AsanHoistedCheck / canary poison-unpoison)
///    become inline shadow-check sequences mirroring JASanTool's dynamic
///    emission op for op, including the per-thread below-SP report stashes
///    — so the unchanged JASanTool::onTrap serves native traps. Address
///    constants (the faulting-PC stash, pc-relative operand targets) are
///    encoded pc-relative to their link VA so they stay correct under a
///    PIC load slide.
///  - JCFI rules require host state (shadow stacks, target tables) and
///    become TRAP(AotCheck) sites; the manifest carries the rules and the
///    remapped instruction so the runner replays the hook via the tool's
///    own rule-driven instrumentation path.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_REWRITE_AOTREWRITER_H
#define JANITIZER_REWRITE_AOTREWRITER_H

#include "jelf/Module.h"
#include "rewrite/AotManifest.h"
#include "rules/RewriteRules.h"
#include "support/Error.h"
#include "vm/Process.h"

namespace janitizer {

struct AotRewriteOptions {
  /// Honor the precomputed liveness carried by the rules (must match the
  /// JASanOptions::UseLiveness of the reference dynamic run for the
  /// differential gates to hold).
  bool UseLiveness = true;
};

/// One module's AOT rewrite: the new module plus its manifest.
struct AotModuleResult {
  Module NewMod;
  AotModuleManifest Manifest;
};

/// Rewrites \p Mod guided by \p Rules (may be null or degraded: uncovered
/// blocks get tier-enter stubs; a null file stubs every block, yielding a
/// module that runs entirely on the DBI tier). \p ToolName selects the
/// interposition entries that must keep trapping ("jasan" forces stubs on
/// the allocator symbols).
ErrorOr<AotModuleResult> aotRewriteModule(const Module &Mod,
                                          const RuleFile *Rules,
                                          const std::string &ToolName,
                                          const AotRewriteOptions &Opts = {});

/// Rewrites \p ExeName and its whole dependency closure from \p Store into
/// \p Out, collecting per-module manifests into \p Manifest. Modules
/// without a rule file in \p Rules are still rewritten (all-stubbed), so
/// the program always loads and partial coverage degrades to the DBI tier
/// instead of failing.
Error aotRewriteProgram(const ModuleStore &Store, const std::string &ExeName,
                        const RuleStore &Rules, const std::string &ToolName,
                        ModuleStore &Out, AotManifest &Manifest,
                        const AotRewriteOptions &Opts = {});

} // namespace janitizer

#endif // JANITIZER_REWRITE_AOTREWRITER_H
