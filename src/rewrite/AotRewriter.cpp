//===- rewrite/AotRewriter.cpp --------------------------------------------==//

#include "rewrite/AotRewriter.h"

#include "baselines/StaticRewriter.h"
#include "jasan/JASan.h" // planScratch
#include "jasan/Shadow.h"
#include "support/Format.h"

#include <set>

using namespace janitizer;

namespace {

SeqInstr sPush(Reg R) {
  SeqInstr S;
  S.I.Op = Opcode::PUSH;
  S.I.Rd = R;
  return S;
}
SeqInstr sPop(Reg R) {
  SeqInstr S;
  S.I.Op = Opcode::POP;
  S.I.Rd = R;
  return S;
}
SeqInstr sOp(Opcode Op) {
  SeqInstr S;
  S.I.Op = Op;
  return S;
}
SeqInstr sRI(Opcode Op, Reg R, int64_t Imm) {
  SeqInstr S;
  S.I.Op = Op;
  S.I.Rd = R;
  S.I.Imm = Imm;
  return S;
}
SeqInstr sMov(Reg Rd, Reg Rs) {
  SeqInstr S;
  S.I.Op = Opcode::MOV_RR;
  S.I.Rd = Rd;
  S.I.Rs = Rs;
  return S;
}
/// An address materialization that stays correct under a PIC load slide:
/// lea rd, [pc + (AbsTarget - pc)], encoded pc-relative by the rewriter.
SeqInstr sLeaAbs(Reg Rd, uint64_t AbsTarget) {
  SeqInstr S;
  S.I.Op = Opcode::LEA;
  S.I.Rd = Rd;
  S.PcRelToAbs = true;
  S.AbsTarget = AbsTarget;
  return S;
}

/// The inline shadow-check sequence: JASanTool::emitShadowCheck op for op,
/// including both below-SP report stashes, so a native AsanViolation trap
/// is served by the unchanged JASanTool::onTrap and yields the exact
/// violation tuple the dynamic modifier would record. The two address
/// constants (pc-relative operand target, faulting instruction address)
/// are emitted as pc-relative LEAs so they resolve to *run-time* VAs under
/// a PIC slide, matching what the hybrid tier stashes.
InsertSeq aotShadowCheckSeq(const MemOperand &Mem, unsigned Size,
                            uint64_t OldAddr, unsigned InstrSize,
                            const ScratchPlan &Plan) {
  InsertSeq Seq;
  Reg S0 = Plan.S0, S1 = Plan.S1;
  unsigned Pushed = 0;
  if (Plan.SaveS0) {
    Seq.push_back(sPush(S0));
    ++Pushed;
  }
  if (Plan.SaveS1) {
    Seq.push_back(sPush(S1));
    ++Pushed;
  }
  if (Plan.SaveFlags) {
    Seq.push_back(sOp(Opcode::PUSHF));
    ++Pushed;
  }

  if (Mem.PCRel) {
    uint64_t Abs = OldAddr + InstrSize +
                   static_cast<uint64_t>(static_cast<int64_t>(Mem.Disp));
    Seq.push_back(sLeaAbs(S0, Abs));
  } else {
    SeqInstr Lea;
    Lea.I.Op = Opcode::LEA;
    Lea.I.Rd = S0;
    Lea.I.Mem = Mem;
    if ((Mem.HasBase && Mem.Base == Reg::SP) ||
        (Mem.HasIndex && Mem.Index == Reg::SP))
      Lea.I.Mem.Disp += static_cast<int32_t>(8 * Pushed);
    Seq.push_back(Lea);
  }
  Seq.push_back(sMov(S1, S0));
  Seq.push_back(sRI(Opcode::SHRI, S1, 3));
  {
    SeqInstr Ld;
    Ld.I.Op = Opcode::LD1;
    Ld.I.Rd = S1;
    Ld.I.Mem.HasBase = true;
    Ld.I.Mem.Base = S1;
    Ld.I.Mem.Disp = static_cast<int32_t>(layout::ShadowBase);
    Seq.push_back(Ld);
  }
  Seq.push_back(sRI(Opcode::TESTI, S1, 0xFF));
  size_t FastOk = Seq.size();
  Seq.push_back(sOp(Opcode::JE)); // -> restores
  {
    // Stash the faulting address for the trap handler; no pushes happen
    // between here and the TRAP, so the below-SP slot stays stable.
    SeqInstr Stash;
    Stash.I.Op = Opcode::ST8;
    Stash.I.Rd = S0;
    Stash.I.Mem.HasBase = true;
    Stash.I.Mem.Base = Reg::SP;
    Stash.I.Mem.Disp = -static_cast<int32_t>(JasanStashAddrOff);
    Seq.push_back(Stash);
  }
  Seq.push_back(sRI(Opcode::CMPI, S1, 0x80));
  size_t PoisonBr = Seq.size();
  Seq.push_back(sOp(Opcode::JAE)); // -> trap
  Seq.push_back(sRI(Opcode::ANDI, S0, 7));
  Seq.push_back(sRI(Opcode::ADDI, S0, static_cast<int64_t>(Size) - 1));
  {
    SeqInstr Cmp;
    Cmp.I.Op = Opcode::CMP;
    Cmp.I.Rd = S0;
    Cmp.I.Rs = S1;
    Seq.push_back(Cmp);
  }
  size_t SlowOk = Seq.size();
  Seq.push_back(sOp(Opcode::JB)); // -> restores
  size_t TrapPath = Seq.size();
  Seq.push_back(sLeaAbs(S0, OldAddr)); // run-time faulting-instruction VA
  {
    SeqInstr Stash2;
    Stash2.I.Op = Opcode::ST8;
    Stash2.I.Rd = S0;
    Stash2.I.Mem.HasBase = true;
    Stash2.I.Mem.Base = Reg::SP;
    Stash2.I.Mem.Disp = -static_cast<int32_t>(JasanStashPcOff);
    Seq.push_back(Stash2);
  }
  Seq.push_back(sRI(Opcode::TRAP, Reg::R0,
                    static_cast<int64_t>(TrapCode::AsanViolation)));
  size_t Restores = Seq.size();
  if (Plan.SaveFlags)
    Seq.push_back(sOp(Opcode::POPF));
  if (Plan.SaveS1)
    Seq.push_back(sPop(S1));
  if (Plan.SaveS0)
    Seq.push_back(sPop(S0));
  Seq[FastOk].JumpToSeqIdx = static_cast<int32_t>(Restores);
  Seq[PoisonBr].JumpToSeqIdx = static_cast<int32_t>(TrapPath);
  Seq[SlowOk].JumpToSeqIdx = static_cast<int32_t>(Restores);
  return Seq;
}

/// Canary-slot shadow write: JASanTool::emitCanaryShadowWrite op for op.
/// Canary slots are SP-relative, never pc-relative, so no slide handling.
InsertSeq aotCanarySeq(const MemOperand &SlotOperand, uint8_t Value,
                       const ScratchPlan &Plan) {
  InsertSeq Seq;
  Reg S0 = Plan.S0, S1 = Plan.S1;
  unsigned Pushed = 0;
  if (Plan.SaveS0) {
    Seq.push_back(sPush(S0));
    ++Pushed;
  }
  if (Plan.SaveS1) {
    Seq.push_back(sPush(S1));
    ++Pushed;
  }
  if (Plan.SaveFlags) {
    Seq.push_back(sOp(Opcode::PUSHF));
    ++Pushed;
  }
  SeqInstr Lea;
  Lea.I.Op = Opcode::LEA;
  Lea.I.Rd = S0;
  Lea.I.Mem = SlotOperand;
  if ((SlotOperand.HasBase && SlotOperand.Base == Reg::SP) ||
      (SlotOperand.HasIndex && SlotOperand.Index == Reg::SP))
    Lea.I.Mem.Disp += static_cast<int32_t>(8 * Pushed);
  Seq.push_back(Lea);
  Seq.push_back(sRI(Opcode::SHRI, S0, 3));
  Seq.push_back(sRI(Opcode::MOV_RI32, S1, Value));
  SeqInstr St;
  St.I.Op = Opcode::ST1;
  St.I.Rd = S1;
  St.I.Mem.HasBase = true;
  St.I.Mem.Base = S0;
  St.I.Mem.Disp = static_cast<int32_t>(layout::ShadowBase);
  Seq.push_back(St);
  if (Plan.SaveFlags)
    Seq.push_back(sOp(Opcode::POPF));
  if (Plan.SaveS1)
    Seq.push_back(sPop(S1));
  if (Plan.SaveS0)
    Seq.push_back(sPop(S0));
  return Seq;
}

void appendSeq(InsertSeq &Dst, const InsertSeq &Src) {
  int32_t Base = static_cast<int32_t>(Dst.size());
  for (SeqInstr SI : Src) {
    if (SI.JumpToSeqIdx >= 0)
      SI.JumpToSeqIdx += Base;
    Dst.push_back(std::move(SI));
  }
}

uint16_t memOperandRegs(const MemOperand &M) {
  uint16_t Mask = 0;
  if (M.HasBase)
    Mask |= regBit(M.Base);
  if (M.HasIndex)
    Mask |= regBit(M.Index);
  return Mask;
}

bool isCfiRule(RuleId Id) {
  switch (Id) {
  case RuleId::CfiCheckCall:
  case RuleId::CfiCheckJump:
  case RuleId::CfiCheckReturn:
  case RuleId::CfiPushRet:
  case RuleId::CfiLazyBindRet:
    return true;
  default:
    return false;
  }
}

/// The rule-guided rewrite client: lowers the analyzer's rules into static
/// instrumentation at the sites the dynamic modifier would instrument.
class AotClient : public RewriteClient {
public:
  AotClient(const RuleFile *RF, std::string ToolName,
            const AotRewriteOptions &Opts)
      : ToolName(std::move(ToolName)), Opts(Opts) {
    if (RF)
      Table = RuleTable(*RF, /*Slide=*/0); // rewrite in the link-VA domain
  }

  DisasmMode disasmMode() const override { return DisasmMode::RuleGuided; }

  bool coversBlock(uint64_t BlockAddr) const override {
    return Table.containsBlock(BlockAddr);
  }

  std::vector<uint64_t> forceTrapEntries(const Module &OldMod) override {
    // JASan interposes on the allocator entry points: the hybrid tier
    // catches them in interceptTarget on every dispatch, so the native
    // tier must keep trapping there no matter how well the bodies were
    // analyzed. JCFI interposes on nothing.
    std::vector<uint64_t> Entries;
    if (ToolName != "jasan")
      return Entries;
    for (const char *Name : {"malloc", "free", "calloc", "realloc",
                             "memmove"})
      if (const Symbol *S = OldMod.findExported(Name))
        Entries.push_back(S->Value);
    return Entries;
  }

  InsertSeq instrumentBefore(const Module &Mod, const Instruction &I,
                             uint64_t OldAddr) override {
    const std::vector<RewriteRule> *Rules = Table.rulesForInstr(OldAddr);
    if (!Rules)
      return {};
    InsertSeq Seq;
    // Same ordering as JASanTool::instrumentWithRules: hoisted checks,
    // then unpoisons and the instruction's own check; poisons are
    // instrumentAfter's.
    for (const RewriteRule &R : *Rules) {
      if (R.Id != RuleId::AsanHoistedCheck)
        continue;
      MemOperand Mem;
      Mem.HasBase = (R.Data[0] & 0x80) != 0;
      Mem.Base = static_cast<Reg>(R.Data[0] & 0x0F);
      unsigned Size = static_cast<unsigned>((R.Data[0] >> 8) & 0xFF);
      uint16_t FreeRegs = static_cast<uint16_t>((R.Data[0] >> 16) & 0xFFFF);
      bool FlagsLive = ((R.Data[0] >> 32) & 1) != 0;
      if (!Opts.UseLiveness) {
        FreeRegs = 0;
        FlagsLive = true;
      }
      ScratchPlan Plan =
          planScratch(FreeRegs, FlagsLive, memOperandRegs(Mem), false);
      for (uint64_t DataIdx : {1, 2}) {
        MemOperand Check = Mem;
        Check.Disp =
            static_cast<int32_t>(static_cast<int64_t>(R.Data[DataIdx]));
        appendSeq(Seq, aotShadowCheckSeq(Check, Size, OldAddr, I.Size, Plan));
        if (R.Data[1] == R.Data[2])
          break; // loop-invariant: one endpoint
      }
    }
    bool HasCfi = false;
    for (const RewriteRule &R : *Rules) {
      if (R.Id == RuleId::AsanUnpoisonCanary) {
        appendSeq(Seq, aotCanarySeq(I.Mem, shadowval::Addressable,
                                    planFor(R, I.Mem)));
      } else if (R.Id == RuleId::AsanCheck) {
        appendSeq(Seq, aotShadowCheckSeq(I.Mem, memAccessSize(I.Op), OldAddr,
                                         I.Size, planFor(R, I.Mem)));
      } else if (isCfiRule(R.Id)) {
        HasCfi = true;
      }
    }
    if (HasCfi) {
      // CFI hooks need host state (shadow stacks, target tables): plant
      // one TRAP(AotCheck) before the instruction; the manifest carries
      // the site's rules for the runner to replay.
      std::vector<RewriteRule> SiteRules;
      for (const RewriteRule &R : *Rules)
        if (isCfiRule(R.Id))
          SiteRules.push_back(R);
      SeqInstr T = sRI(Opcode::TRAP, Reg::R0,
                       static_cast<int64_t>(TrapCode::AotCheck));
      T.TrapSiteId = static_cast<int32_t>(PendingSites.size());
      PendingSites.push_back(std::move(SiteRules));
      Seq.push_back(std::move(T));
    }
    return Seq;
  }

  InsertSeq instrumentAfter(const Module &Mod, const Instruction &I,
                            uint64_t OldAddr) override {
    const std::vector<RewriteRule> *Rules = Table.rulesForInstr(OldAddr);
    if (!Rules)
      return {};
    InsertSeq Seq;
    for (const RewriteRule &R : *Rules)
      if (R.Id == RuleId::AsanPoisonCanary)
        appendSeq(Seq, aotCanarySeq(I.Mem, shadowval::StackCanary,
                                    planFor(R, I.Mem)));
    return Seq;
  }

  void placeTrapSite(int32_t SiteId, uint64_t TrapVA, const Instruction &NewI,
                     uint64_t NewAppAddr, uint64_t OldAppAddr) override {
    AotTrapSite Site;
    Site.TrapVA = TrapVA;
    Site.OldAddr = OldAppAddr;
    Site.NewAppAddr = NewAppAddr;
    Site.NewI = NewI;
    Site.Rules = PendingSites[static_cast<size_t>(SiteId)];
    TrapSites[TrapVA] = std::move(Site);
  }

  std::map<uint64_t, AotTrapSite> TrapSites;

private:
  ScratchPlan planFor(const RewriteRule &R, const MemOperand &Mem) const {
    uint16_t FreeRegs =
        Opts.UseLiveness ? static_cast<uint16_t>(R.Data[0]) : 0;
    bool FlagsLive = Opts.UseLiveness ? R.Data[1] != 0 : true;
    return planScratch(FreeRegs, FlagsLive, memOperandRegs(Mem),
                       R.Data[2] != 0);
  }

  RuleTable Table;
  std::string ToolName;
  AotRewriteOptions Opts;
  std::vector<std::vector<RewriteRule>> PendingSites;
};

} // namespace

ErrorOr<AotModuleResult>
janitizer::aotRewriteModule(const Module &Mod, const RuleFile *Rules,
                            const std::string &ToolName,
                            const AotRewriteOptions &Opts) {
  AotClient Client(Rules, ToolName, Opts);
  auto RW = rewriteModule(Mod, Client);
  if (!RW)
    return RW.takeError();

  AotModuleResult Out;
  Out.NewMod = std::move(RW->NewMod);
  AotModuleManifest &MM = Out.Manifest;
  MM.ModuleName = Mod.Name;
  MM.NewRegionStart = RW->NewRegionStart;
  MM.NewRegionEnd = RW->NewRegionEnd;
  for (const Section &S : Mod.Sections)
    if (S.Kind == SectionKind::Init || S.Kind == SectionKind::Text ||
        S.Kind == SectionKind::Fini)
      MM.OrigCodeRanges.emplace_back(S.Addr, S.Addr + S.Bytes.size());
  MM.TierEnterStubs = std::move(RW->TierEnterStubs);
  MM.TrapSites = std::move(Client.TrapSites);
  MM.OldToNew = std::move(RW->OldToNew);
  MM.CoveredBlocks = RW->CoveredBlocks;
  MM.Instructions = RW->Instructions;
  MM.HadRules = Rules != nullptr;
  return Out;
}

Error janitizer::aotRewriteProgram(const ModuleStore &Store,
                                   const std::string &ExeName,
                                   const RuleStore &Rules,
                                   const std::string &ToolName,
                                   ModuleStore &Out, AotManifest &Manifest,
                                   const AotRewriteOptions &Opts) {
  std::vector<std::string> Work = {ExeName};
  std::set<std::string> Seen;
  while (!Work.empty()) {
    std::string Name = Work.back();
    Work.pop_back();
    if (!Seen.insert(Name).second)
      continue;
    const Module *Mod = Store.find(Name);
    if (!Mod)
      return makeError(formatString("aot: module '%s' not found",
                                    Name.c_str()));
    for (const std::string &Dep : Mod->Needed)
      Work.push_back(Dep);
    // A module without rules is still rewritten — all blocks become
    // tier-enter stubs — so partial static coverage degrades to the DBI
    // tier instead of refusing the program.
    const RuleFile *RF = Rules.find(Name, ToolName);
    auto RW = aotRewriteModule(*Mod, RF, ToolName, Opts);
    if (!RW)
      return RW.takeError();
    Out.add(std::move(RW->NewMod));
    Manifest.Modules[Name] = std::move(RW->Manifest);
  }
  return Error::success();
}
