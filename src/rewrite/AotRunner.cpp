//===- rewrite/AotRunner.cpp ----------------------------------------------==//

#include "rewrite/AotRunner.h"

#include "support/Format.h"
#include "support/Trace.h"

using namespace janitizer;

namespace {

/// Resolves a runtime VA to (loaded module, its manifest); either may be
/// null (trampoline, runtime-less modules).
struct Where {
  const LoadedModule *LM = nullptr;
  const AotModuleManifest *MM = nullptr;
};

Where whereIs(const Process &P, const AotManifest &Manifest, uint64_t PC) {
  Where W;
  W.LM = P.moduleAt(PC);
  if (W.LM)
    W.MM = Manifest.find(W.LM->Mod->Name);
  return W;
}

/// True when \p PC lies in vacated original code — it must execute on the
/// DBI tier (the bytes are retained as data; natively they are stale).
bool inOrigCode(const Process &P, const AotManifest &Manifest, uint64_t PC) {
  Where W = whereIs(P, Manifest, PC);
  return W.MM && W.MM->inOrigCode(W.LM->toLink(PC));
}

} // namespace

AotRun janitizer::runUnderJanitizerAot(const ModuleStore &Store,
                                       const std::string &ExeName,
                                       SecurityTool &Tool,
                                       const RuleStore &Rules,
                                       const AotManifest &Manifest,
                                       const AotRunOptions &Opts) {
  JZ_TRACE_SPAN("aot.run", {{"exe", ExeName}});
  AotRun Out;

  Process P(Store);
  JanitizerDynamic Dyn(Tool, Rules);
  DbiEngine E(P, Dyn); // registers as observer before loadProgram
  E.setTierExit([&P, &Manifest](uint64_t Target) {
    Where W = whereIs(P, Manifest, Target);
    return W.MM && W.MM->inNewRegion(W.LM->toLink(Target));
  });

  auto Fault = [&](std::string Msg, uint64_t PC) {
    RunResult RR;
    RR.St = RunResult::Status::Faulted;
    RR.FaultMsg = std::move(Msg);
    RR.TrapPC = PC;
    return RR;
  };

  // Carpet the vacated original code of every rewritten module: the
  // native interpreter traps (VacatedExec) instead of silently executing
  // stale uninstrumented bytes, and the runner re-enters the DBI tier
  // there. Refreshed when the loaded-module set grows (dlopen).
  size_t CarpetedModules = 0;
  auto RefreshCarpet = [&] {
    if (P.modules().size() == CarpetedModules)
      return;
    CarpetedModules = P.modules().size();
    std::vector<std::pair<uint64_t, uint64_t>> Ranges;
    for (const LoadedModule &LM : P.modules()) {
      const AotModuleManifest *MM = Manifest.find(LM.Mod->Name);
      if (!MM)
        continue;
      for (const auto &[Lo, Hi] : MM->OrigCodeRanges)
        Ranges.push_back({LM.toRuntime(Lo), LM.toRuntime(Hi)});
    }
    P.setNoExecRanges(std::move(Ranges));
  };

  RunResult Final;
  if (Error Err = P.loadProgram(ExeName)) {
    Final = Fault("aot: " + Err.message(), 0);
  } else {
    uint64_t Switches = 0;
    bool Done = false;
    while (!Done) {
      RefreshCarpet();
      if (++Switches > Opts.MaxTierSwitches) {
        Final = Fault(formatString("aot: tier thrash (%llu switches) at pc=%llx",
                                   static_cast<unsigned long long>(Switches),
                                   static_cast<unsigned long long>(P.M.PC)),
                      P.M.PC);
        break;
      }

      if (inOrigCode(P, Manifest, P.M.PC)) {
        // --- DBI fallback leg --------------------------------------------
        ++Out.DbiLegs;
        RunResult DR = E.run(Opts.MaxSteps);
        Out.Dbi.add(E.stats()); // stats are per-run(): fold every leg
        if (DR.St == RunResult::Status::TierExit)
          continue; // PC now inside a rewritten region; go native
        Final = DR;
        break;
      }

      // --- native leg -----------------------------------------------------
      ++Out.NativeLegs;
      RunResult RR = P.runNative(Opts.MaxSteps);
      if (RR.St != RunResult::Status::Trapped) {
        Final = RR;
        break;
      }

      switch (static_cast<TrapCode>(RR.TrapCode)) {
      case TrapCode::TierEnter: {
        // Per-site stub: TRAP + 8 bytes of the original link PC. The
        // interposition probe runs first — allocator entries are forced
        // stubs precisely so the tool intercepts them on every visit,
        // exactly like a hybrid dispatch to the symbol.
        if (Dyn.interceptTarget(E, RR.TrapPC)) {
          ++Out.Intercepts;
          continue; // tool emulated the callee; PC is the return address
        }
        ++Out.TierEnters;
        const LoadedModule *LM = P.moduleAt(RR.TrapPC);
        if (!LM) {
          Final = Fault("aot: tier-enter stub outside any module", RR.TrapPC);
          Done = true;
          break;
        }
        uint64_t OrigPC = P.M.Mem.read64(RR.TrapPC + 2);
        P.M.PC = LM->toRuntime(OrigPC);
        break; // top of loop routes the original-code PC to the DBI tier
      }

      case TrapCode::AotCheck: {
        // Hook replay: hand the manifest's rules for this site back to the
        // tool's own rule-driven instrumentation on a synthetic block,
        // then fire the resulting hooks. Keeps hook semantics (shadow
        // stacks, target checks) and costs the tool's own.
        ++Out.AotChecks;
        Where W = whereIs(P, Manifest, RR.TrapPC);
        const AotTrapSite *Site = nullptr;
        if (W.MM) {
          auto It = W.MM->TrapSites.find(W.LM->toLink(RR.TrapPC));
          if (It != W.MM->TrapSites.end())
            Site = &It->second;
        }
        if (!Site) {
          Final = Fault("aot: unknown check-trap site", RR.TrapPC);
          Done = true;
          break;
        }
        CacheBlock CB;
        BlockBuilder B(CB);
        uint64_t RtAddr = W.LM->toRuntime(Site->NewAppAddr);
        std::vector<DecodedInstrRT> Instrs{{Site->NewI, RtAddr}};
        std::unordered_map<uint64_t, std::vector<RewriteRule>> IR;
        IR.emplace(RtAddr, Site->Rules);
        Tool.instrumentWithRules(Dyn, CB, B, Instrs, IR);
        HookAction A = HookAction::Continue;
        for (const CacheOp &Op : CB.Ops) {
          if (Op.K != CacheOp::Kind::Hook)
            continue;
          E.charge(Op.HookCost +
                   (Op.InlineHook ? 0 : dbicost::CleanCallBase));
          A = Dyn.onHook(E, Op);
          if (A == HookAction::Abort)
            break;
        }
        if (A == HookAction::Abort) {
          Final = RR;
          Done = true;
          break;
        }
        P.M.PC = RR.TrapPC + 2; // resume after the trap
        break;
      }

      case TrapCode::VacatedExec: {
        // A register-computed target (entry+offset arithmetic, stale saved
        // pointer) escaped static symbolization and landed in the vacated
        // original code. The bytes are intact and the rule store speaks
        // original link addresses, so the DBI tier translates the
        // discovered region and resumes — the soundness fallback.
        if (!inOrigCode(P, Manifest, RR.TrapPC)) {
          Final = Fault("aot: vacated-exec trap outside any manifest range",
                        RR.TrapPC);
          Done = true;
          break;
        }
        ++Out.VacatedEnters;
        P.M.PC = RR.TrapPC;
        break; // top of loop routes the original-code PC to the DBI tier
      }

      case TrapCode::AsanViolation:
      case TrapCode::CfiViolation:
      case TrapCode::BaselineViolation: {
        // Inlined check fired: the tool records the violation from the
        // machine state the sequence stashed, identically to the hybrid
        // tier's meta-TRAP path.
        HookAction A = Dyn.onTrap(E, RR.TrapCode, RR.TrapPC);
        if (A == HookAction::Abort) {
          Final = RR;
          Done = true;
          break;
        }
        P.M.PC = RR.TrapPC + 2;
        break;
      }

      default:
        // Application trap (abort, __stack_chk_fail, ...): let the tool
        // see it, then end the run like the hybrid tier would.
        Dyn.onTrap(E, RR.TrapCode, RR.TrapPC);
        Final = RR;
        Done = true;
        break;
      }
    }
  }

  Out.Result = Final;
  Out.Result.Cycles = P.totalCycles();
  Out.Result.Retired = P.totalRetired();
  Out.Coverage = Dyn.coverage();
  Out.Degradation = Out.Coverage.Degradation;
  Out.Violations = E.violations();
  Out.Output = P.output();
  Out.Coverage.publishMetrics();
  Out.Dbi.publishMetrics();
  return Out;
}
