//===- rewrite/AotManifest.h - Out-of-band metadata of an AOT rewrite -----===//
///
/// \file
/// The manifest the AOT rewriter (DESIGN.md §5j) emits alongside each
/// rewritten module and the tiered runner consumes:
///
///  - the link-VA range of the fresh region holding rewritten code, stubs
///    and extra sections — the tier-exit predicate of the DBI fallback
///    tier tests dispatch targets against it;
///  - the original executable-section ranges, vacated by the rewrite and
///    retained as read-only data — addresses in them must execute on the
///    DBI tier, never natively;
///  - every per-site TRAP(TierEnter) stub with the original PC the DBI
///    tier resumes at;
///  - every TRAP(AotCheck) site: a tool hook (clean call) that cannot be
///    inlined as plain instructions, carrying the rules and the remapped
///    instruction so the runner can replay the hook exactly as the dynamic
///    modifier would have.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_REWRITE_AOTMANIFEST_H
#define JANITIZER_REWRITE_AOTMANIFEST_H

#include "isa/Instruction.h"
#include "rules/RewriteRules.h"

#include <map>
#include <string>
#include <vector>

namespace janitizer {

/// One planted TRAP(AotCheck): the runner re-derives the hook ops by
/// handing the remapped instruction and its rules back to the security
/// tool's rule-driven instrumentation path.
struct AotTrapSite {
  uint64_t TrapVA = 0;     ///< link VA of the TRAP instruction
  uint64_t OldAddr = 0;    ///< original (link) address of the instruction
  uint64_t NewAppAddr = 0; ///< link VA of the remapped instruction
  Instruction NewI;        ///< the remapped instruction (final operands)
  std::vector<RewriteRule> Rules; ///< rules to replay at this site
};

struct AotModuleManifest {
  std::string ModuleName;
  /// Fresh region [start, end) in link VAs: rewritten code, tier-enter
  /// stubs and extra sections. Everything the native tier may execute in
  /// this module (besides the unmoved PLT) lives here.
  uint64_t NewRegionStart = 0;
  uint64_t NewRegionEnd = 0;
  /// Original executable-section link ranges [start, end), now vacated
  /// (retained as read-only data for the DBI fallback tier).
  std::vector<std::pair<uint64_t, uint64_t>> OrigCodeRanges;
  /// Stub link VA -> original (link) PC, one per unproven/forced head.
  std::map<uint64_t, uint64_t> TierEnterStubs;
  /// TRAP(AotCheck) sites keyed by the trap instruction's link VA.
  std::map<uint64_t, AotTrapSite> TrapSites;
  /// Old instruction address -> new address (RuleGuided: the start of the
  /// guarding sequence), for tests and tooling.
  std::map<uint64_t, uint64_t> OldToNew;
  size_t CoveredBlocks = 0; ///< basic blocks laid out natively
  size_t Instructions = 0;  ///< instructions in the rewritten sections
  bool HadRules = false;    ///< a rule file existed for this module

  bool inNewRegion(uint64_t LinkVA) const {
    return LinkVA >= NewRegionStart && LinkVA < NewRegionEnd;
  }
  bool inOrigCode(uint64_t LinkVA) const {
    for (const auto &[Lo, Hi] : OrigCodeRanges)
      if (LinkVA >= Lo && LinkVA < Hi)
        return true;
    return false;
  }
};

/// Manifest of a whole rewritten program (one entry per module).
struct AotManifest {
  std::map<std::string, AotModuleManifest> Modules;

  const AotModuleManifest *find(const std::string &Name) const {
    auto It = Modules.find(Name);
    return It == Modules.end() ? nullptr : &It->second;
  }
};

} // namespace janitizer

#endif // JANITIZER_REWRITE_AOTMANIFEST_H
