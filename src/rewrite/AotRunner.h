//===- rewrite/AotRunner.h - Tiered native/DBI execution of AOT output ----===//
///
/// \file
/// Runs an AOT-rewritten program (AotRewriter.h) under its security tool
/// with two execution tiers:
///
///  - the *native* tier interprets the statically rewritten code directly
///    — instrumentation is inlined, so there are no dispatcher entries,
///    no translation, no code cache;
///  - the *DBI fallback* tier (the ordinary JanitizerDynamic engine over
///    the retained original code, driven by the module's original rule
///    file) serves every region the static rules did not prove.
///
/// Transitions are trap-driven in one direction and predicate-driven in
/// the other:
///
///  - native code reaching an unproven head executes its per-site
///    TRAP(TierEnter) stub; the runner reads the original PC out of the
///    stub and resumes the DBI engine there — unless the stub is an
///    interposition entry (the sanitizer allocators), which the tool
///    intercepts on the spot exactly like a hybrid dispatch;
///  - the DBI engine carries a tier-exit predicate (DbiEngine::
///    setTierExit): a dispatch target inside a rewritten region ends the
///    DBI leg with Status::TierExit and the runner resumes natively.
///
/// TRAP(AotCheck) sites (CFI hooks needing host state) are replayed by
/// handing the manifest's rules back to the tool's instrumentWithRules on
/// a synthetic one-instruction block, so hook semantics and costs are the
/// tool's own, not re-implemented here.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_REWRITE_AOTRUNNER_H
#define JANITIZER_REWRITE_AOTRUNNER_H

#include "core/JanitizerDynamic.h"
#include "rewrite/AotManifest.h"

namespace janitizer {

/// Result of one tiered run. Mirrors JanitizerRun so the differential
/// harness can compare field by field; Dbi/Coverage cover only the DBI
/// legs (a fully analyzed program reports Dbi.DispatchEntries == 0).
struct AotRun {
  RunResult Result;
  CoverageStats Coverage;
  DbiStats Dbi;
  std::vector<Violation> Violations;
  std::string Output;
  DegradationReport Degradation;

  // --- tier accounting ----------------------------------------------------
  uint64_t NativeLegs = 0;    ///< native-tier resumptions
  uint64_t DbiLegs = 0;       ///< DBI-tier resumptions
  uint64_t TierEnters = 0;    ///< TierEnter stubs taken into the DBI tier
  uint64_t Intercepts = 0;    ///< allocator interpositions from native code
  uint64_t AotChecks = 0;     ///< TRAP(AotCheck) hook replays
  /// Register-computed targets that landed in vacated original code (the
  /// no-exec carpet) and re-entered the DBI tier there — the soundness
  /// residue static symbolization cannot prove.
  uint64_t VacatedEnters = 0;
};

struct AotRunOptions {
  uint64_t MaxSteps = 1ull << 32;
  /// Hard cap on native<->DBI transitions: a ping-ponging program (a tight
  /// loop straddling a coverage boundary) must terminate as a structured
  /// fault, not hang the host.
  uint64_t MaxTierSwitches = 1ull << 20;
};

/// Runs the *rewritten* store's \p ExeName under \p Tool. \p Rules is the
/// original modules' rule store — the DBI tier attaches it to the retained
/// original code, whose link addresses the rewrite preserved. \p Manifest
/// is the rewrite's manifest (aotRewriteProgram).
AotRun runUnderJanitizerAot(const ModuleStore &Store,
                            const std::string &ExeName, SecurityTool &Tool,
                            const RuleStore &Rules,
                            const AotManifest &Manifest,
                            const AotRunOptions &Opts = {});

} // namespace janitizer

#endif // JANITIZER_REWRITE_AOTRUNNER_H
