//===- analysis/Loops.cpp -------------------------------------------------==//

#include "analysis/Loops.h"

#include <algorithm>
#include <deque>
#include <map>

using namespace janitizer;

namespace {

/// Finds back edges within one function via iterative DFS.
std::vector<std::pair<uint64_t, uint64_t>>
findBackEdges(const ModuleCFG &CFG, const CfgFunction &F) {
  std::vector<std::pair<uint64_t, uint64_t>> BackEdges;
  std::map<uint64_t, int> Color; // 0 white, 1 grey, 2 black
  std::vector<std::pair<uint64_t, size_t>> Stack;
  if (!CFG.blockAt(F.Entry))
    return BackEdges;
  Stack.push_back({F.Entry, 0});
  Color[F.Entry] = 1;
  auto InFunc = [&](uint64_t A) {
    const BasicBlock *BB = CFG.blockAt(A);
    return BB && std::find(F.Blocks.begin(), F.Blocks.end(), A) !=
                     F.Blocks.end();
  };
  while (!Stack.empty()) {
    auto &[Addr, Idx] = Stack.back();
    const BasicBlock *BB = CFG.blockAt(Addr);
    if (!BB || Idx >= BB->Succs.size()) {
      Color[Addr] = 2;
      Stack.pop_back();
      continue;
    }
    uint64_t S = BB->Succs[Idx++];
    if (!InFunc(S))
      continue;
    int C = Color[S];
    if (C == 1)
      BackEdges.push_back({Addr, S});
    else if (C == 0) {
      Color[S] = 1;
      Stack.push_back({S, 0});
    }
  }
  return BackEdges;
}

/// Natural loop of back edge Latch->Header: header plus all blocks that
/// reach the latch without going through the header.
NaturalLoop buildLoop(const ModuleCFG &CFG, uint64_t Latch, uint64_t Header) {
  NaturalLoop L;
  L.Header = Header;
  L.Latch = Latch;
  L.Body.insert(Header);
  std::deque<uint64_t> Work;
  if (Latch != Header) {
    L.Body.insert(Latch);
    Work.push_back(Latch);
  }
  while (!Work.empty()) {
    uint64_t A = Work.front();
    Work.pop_front();
    const BasicBlock *BB = CFG.blockAt(A);
    if (!BB)
      continue;
    for (uint64_t P : BB->Preds)
      if (!L.Body.count(P)) {
        L.Body.insert(P);
        Work.push_back(P);
      }
  }
  // Unique preheader?
  const BasicBlock *H = CFG.blockAt(Header);
  uint64_t Pre = 0;
  unsigned NumOutside = 0;
  for (uint64_t P : H->Preds)
    if (!L.Body.count(P)) {
      ++NumOutside;
      Pre = P;
    }
  if (NumOutside == 1)
    L.Preheader = Pre;
  // Calls or syscalls in the body poison shadow-stability assumptions.
  for (uint64_t A : L.Body) {
    const BasicBlock *BB = CFG.blockAt(A);
    if (!BB)
      continue;
    if (BB->Term == CTIKind::DirectCall || BB->Term == CTIKind::IndirectCall)
      L.HasCalls = true;
    for (const DecodedInstr &DI : BB->Instrs)
      if (DI.I.Op == Opcode::SYSCALL)
        L.HasCalls = true;
  }
  return L;
}

/// Registers written anywhere in the loop body.
uint16_t regsWrittenInLoop(const ModuleCFG &CFG, const NaturalLoop &L) {
  uint16_t W = 0;
  for (uint64_t A : L.Body) {
    const BasicBlock *BB = CFG.blockAt(A);
    if (!BB)
      continue;
    for (const DecodedInstr &DI : BB->Instrs)
      W |= regsWritten(DI.I);
  }
  return W;
}

/// Recovers a simple affine induction variable from the canonical
/// latch-form loop:  ... addi iv, step ; cmpi iv, bound ; jl header.
InductionVar recoverInduction(const ModuleCFG &CFG, const NaturalLoop &L) {
  InductionVar IV;
  const BasicBlock *Latch = CFG.blockAt(L.Latch);
  if (!Latch || Latch->Instrs.size() < 3)
    return IV;
  const DecodedInstr &Jcc = Latch->Instrs.back();
  if (Jcc.I.Op != Opcode::JL && Jcc.I.Op != Opcode::JB)
    return IV;
  if (Jcc.I.branchTarget(Jcc.Addr) != L.Header)
    return IV;
  const DecodedInstr &Cmp = Latch->Instrs[Latch->Instrs.size() - 2];
  if (Cmp.I.Op != Opcode::CMPI)
    return IV;
  // Find the step (addi iv, k) somewhere earlier in the latch block.
  for (size_t K = Latch->Instrs.size() - 2; K-- > 0;) {
    const Instruction &I = Latch->Instrs[K].I;
    if (I.Op == Opcode::ADDI && I.Rd == Cmp.I.Rd) {
      IV.IV = I.Rd;
      IV.Step = I.Imm;
      IV.Bound = Cmp.I.Imm;
      break;
    }
    if (regsWritten(I) & regBit(Cmp.I.Rd))
      return IV; // some other redefinition — not a simple induction
  }
  if (IV.Step == 0)
    return IV;
  // Init: last definition of iv in the preheader must be movi iv, k.
  if (!L.Preheader)
    return IV;
  const BasicBlock *Pre = CFG.blockAt(L.Preheader);
  if (!Pre)
    return IV;
  bool FoundInit = false;
  for (auto It = Pre->Instrs.rbegin(); It != Pre->Instrs.rend(); ++It) {
    if (!(regsWritten(It->I) & regBit(IV.IV)))
      continue;
    if (It->I.Op == Opcode::MOV_RI32 || It->I.Op == Opcode::MOV_RI64) {
      IV.Init = It->I.Imm;
      FoundInit = true;
    }
    break;
  }
  if (!FoundInit)
    return IV;
  IV.Valid = true;
  return IV;
}

} // namespace

LoopAnalysis janitizer::analyzeLoops(const ModuleCFG &CFG) {
  LoopAnalysis LA;
  for (const CfgFunction &F : CFG.Functions) {
    for (auto [Latch, Header] : findBackEdges(CFG, F)) {
      NaturalLoop L = buildLoop(CFG, Latch, Header);
      InductionVar IV = recoverInduction(CFG, L);
      LA.Loops.push_back(L);
      LA.Inductions.push_back(IV);
    }
  }

  // Classify elidable accesses.
  for (size_t LI = 0; LI < LA.Loops.size(); ++LI) {
    const NaturalLoop &L = LA.Loops[LI];
    const InductionVar &IV = LA.Inductions[LI];
    if (!L.Preheader || L.HasCalls)
      continue;
    const BasicBlock *Pre = CFG.blockAt(L.Preheader);
    if (!Pre || Pre->Instrs.empty())
      continue;
    uint64_t Anchor = Pre->Instrs.back().Addr;
    uint16_t WrittenInLoop = regsWrittenInLoop(CFG, L);
    // Registers written at/after the anchor in the preheader would not yet
    // hold their values when the hoisted check runs.
    uint16_t WrittenAtAnchor = regsWritten(Pre->Instrs.back().I);

    // Only accesses in blocks that execute on every iteration (header and
    // latch) may have their checks hoisted.
    std::vector<uint64_t> EveryIter = {L.Header};
    if (L.Latch != L.Header)
      EveryIter.push_back(L.Latch);
    for (uint64_t BA : EveryIter) {
      const BasicBlock *BB = CFG.blockAt(BA);
      if (!BB)
        continue;
      for (const DecodedInstr &DI : BB->Instrs) {
        unsigned Size = memAccessSize(DI.I.Op);
        if (!Size)
          continue;
        const MemOperand &Mem = DI.I.Mem;
        if (Mem.PCRel)
          continue;
        uint16_t MemRegs = 0;
        if (Mem.HasBase)
          MemRegs |= regBit(Mem.Base);
        if (Mem.HasIndex)
          MemRegs |= regBit(Mem.Index);
        uint16_t NonIV = static_cast<uint16_t>(
            MemRegs & ~(IV.Valid ? regBit(IV.IV) : 0));
        // The hoisted check reads only the non-IV registers (the endpoints
        // substitute the IV by constants), so only those must already hold
        // their values at the anchor.
        if (NonIV & WrittenAtAnchor)
          continue;
        bool BaseInvariant = (NonIV & WrittenInLoop) == 0;
        if (!BaseInvariant)
          continue;

        bool UsesIV = IV.Valid && (MemRegs & regBit(IV.IV));
        if (!UsesIV) {
          if (MemRegs & WrittenInLoop)
            continue; // address changes across iterations
          ElidableAccess EA;
          EA.K = ElidableAccess::Kind::LoopInvariant;
          EA.InstrAddr = DI.Addr;
          EA.PreheaderBlock = L.Preheader;
          EA.AnchorInstr = Anchor;
          EA.Mem = Mem;
          EA.AccessSize = Size;
          EA.LastDisp = Mem.Disp;
          LA.Elidable.push_back(EA);
          continue;
        }
        // Iterator-strided: iv must be the index register with init 0 and
        // step 1 so the footprint is [disp, disp + (bound-1)*scale].
        if (!(Mem.HasIndex && Mem.Index == IV.IV) || (Mem.HasBase && Mem.Base == IV.IV))
          continue;
        if (IV.Init != 0 || IV.Step != 1 || IV.Bound < 1)
          continue;
        int64_t Last = static_cast<int64_t>(Mem.Disp) +
                       (IV.Bound - 1) * (1ll << Mem.ScaleLog2);
        if (Last < INT32_MIN || Last > INT32_MAX)
          continue;
        ElidableAccess EA;
        EA.K = ElidableAccess::Kind::IteratorStrided;
        EA.InstrAddr = DI.Addr;
        EA.PreheaderBlock = L.Preheader;
        EA.AnchorInstr = Anchor;
        EA.Mem = Mem;
        EA.AccessSize = Size;
        EA.LastDisp = static_cast<int32_t>(Last);
        LA.Elidable.push_back(EA);
      }
    }
  }
  return LA;
}
