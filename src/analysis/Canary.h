//===- analysis/Canary.h - Stack-canary and stack-frame analysis ----------===//
///
/// \file
/// Identifies stack-canary spills and checks (§3.3.3) plus per-function
/// stack-frame sizes. The canonical canary idiom mirrors x86-64 glibc:
///
///   prologue:  mov rX, tp            ; fetch the canary from the thread ptr
///              st8 [sp + K], rX      ; spill it into the frame
///   epilogue:  ld8 rY, [sp + K]
///              cmp rY, tp            ; any mismatch -> __stack_chk_fail
///              jne fail
///
/// JASan uses these sites to poison the canary slot after the spill and
/// unpoison it before the epilogue load, giving stack-frame-granularity
/// overflow detection (the Retrowrite-style policy, §4.1.1). The analysis
/// tracks the SP delta through each function so offsets recorded at
/// different stack depths normalize to the same slot.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_ANALYSIS_CANARY_H
#define JANITIZER_ANALYSIS_CANARY_H

#include "cfg/CFG.h"

#include <unordered_map>
#include <vector>

namespace janitizer {

/// One canary-protected function.
struct CanarySite {
  uint64_t FuncEntry = 0;
  /// The canary spill store; poison the slot right after this instruction.
  uint64_t StoreInstr = 0;
  /// The epilogue reload(s); unpoison right before each.
  std::vector<uint64_t> CheckLoads;
  /// Frame slot as [sp + SlotOffset] *at the store site*.
  int32_t SlotOffset = 0;
};

struct StackInfo {
  /// Maximum frame extent (bytes below entry SP) per function entry.
  std::unordered_map<uint64_t, int64_t> FrameSize;
  /// SP delta relative to function entry, per instruction address
  /// (before executing the instruction); absent when untrackable.
  std::unordered_map<uint64_t, int64_t> SpDelta;
};

struct CanaryAnalysis {
  std::vector<CanarySite> Sites;
  StackInfo Stack;
};

CanaryAnalysis analyzeCanaries(const ModuleCFG &CFG);

} // namespace janitizer

#endif // JANITIZER_ANALYSIS_CANARY_H
