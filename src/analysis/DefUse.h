//===- analysis/DefUse.h - Register def-use chain tracing -----------------===//
///
/// \file
/// Reaching-definition chains over registers within a function — the
/// "SSA-level diffuse-chain tracing" building block of §3.3.3, usable for
/// allocation-site tracking or taint-style flow queries by custom security
/// tools (see examples/custom_tool_plugin.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_ANALYSIS_DEFUSE_H
#define JANITIZER_ANALYSIS_DEFUSE_H

#include "cfg/CFG.h"

#include <map>
#include <vector>

namespace janitizer {

struct DefUseChains {
  /// For (use instruction, register) -> addresses of instructions whose
  /// definition of that register may reach the use. An empty vector means
  /// the value flows in from outside the function (argument or
  /// environment).
  std::map<std::pair<uint64_t, uint8_t>, std::vector<uint64_t>> Reaching;

  const std::vector<uint64_t> &reachingDefs(uint64_t UseAddr, Reg R) const {
    static const std::vector<uint64_t> Empty;
    auto It = Reaching.find({UseAddr, static_cast<uint8_t>(R)});
    return It == Reaching.end() ? Empty : It->second;
  }
};

/// Computes reaching definitions for one function of \p CFG.
DefUseChains computeDefUse(const ModuleCFG &CFG, const CfgFunction &F);

/// Transitively follows def chains backward from (UseAddr, R): returns all
/// instruction addresses contributing to the value (bounded traversal).
std::vector<uint64_t> traceValueSources(const ModuleCFG &CFG,
                                        const DefUseChains &DU,
                                        uint64_t UseAddr, Reg R);

} // namespace janitizer

#endif // JANITIZER_ANALYSIS_DEFUSE_H
