//===- analysis/Liveness.h - Register and arithmetic-flag liveness --------===//
///
/// \file
/// Backward liveness over the recovered CFG, for registers and for the
/// arithmetic-flag set (treated as a unit, as instrumentation saves and
/// restores all flags together).
///
/// Boundary conditions follow the paper:
///  - at returns, callee-saved registers, SP, TP and R0 (the return value)
///    are live; flags are dead (the ABI does not preserve flags);
///  - where exact control flow cannot be determined statically (indirect
///    jumps/calls, undiscovered successors), everything is assumed live
///    (§3.3.2);
///  - direct calls kill caller-saved registers and read the argument set.
///
/// The intra-procedural result is *unsound* for binaries that break the
/// calling convention (gcc's ipa-ra, hand-written assembly — §4.1.2). The
/// inter-procedural extension visits call sites: any caller-saved register
/// live across a call to F in some caller is added to F's exit-live set,
/// and F is re-analyzed. Functions that clobber callee-saved registers
/// without restoring them are flagged so instrumentation can fall back to
/// conservative save/restore inside them.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_ANALYSIS_LIVENESS_H
#define JANITIZER_ANALYSIS_LIVENESS_H

#include "cfg/CFG.h"

#include <unordered_map>
#include <unordered_set>

namespace janitizer {

/// Liveness state at one program point: a register mask plus the flag bit.
struct LiveState {
  uint16_t Regs = 0;
  bool Flags = false;
};

struct LivenessInfo {
  /// Live-in state per instruction address: what must be preserved by any
  /// code inserted immediately *before* that instruction.
  std::unordered_map<uint64_t, LiveState> LiveIn;

  /// Functions (by entry address) that clobber callee-saved registers
  /// without restoring them (convention breakers, §4.1.2).
  std::unordered_set<uint64_t> ConventionBreakers;

  /// Queries live-in at \p InstrAddr; unknown addresses conservatively
  /// report everything live.
  LiveState at(uint64_t InstrAddr) const {
    auto It = LiveIn.find(InstrAddr);
    if (It == LiveIn.end())
      return LiveState{0xFFFF, true};
    return It->second;
  }

  /// Registers *free for scratch use* before \p InstrAddr (not live, not SP
  /// and not TP).
  uint16_t freeRegsAt(uint64_t InstrAddr) const {
    LiveState S = at(InstrAddr);
    uint16_t Free = static_cast<uint16_t>(~S.Regs);
    Free &= static_cast<uint16_t>(~(regBit(Reg::SP) | regBit(Reg::TP)));
    return Free;
  }
};

struct LivenessOptions {
  /// Enable the §4.1.2 inter-procedural extension. When false the result
  /// reproduces the unsound intra-procedural analysis (for the ablation
  /// experiments).
  bool InterProcedural = true;
};

LivenessInfo computeLiveness(const ModuleCFG &CFG,
                             const LivenessOptions &Opts = {});

} // namespace janitizer

#endif // JANITIZER_ANALYSIS_LIVENESS_H
