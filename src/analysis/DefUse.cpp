//===- analysis/DefUse.cpp ------------------------------------------------==//

#include "analysis/DefUse.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace janitizer;

namespace {

/// Per-register sets of definition sites live at a program point.
struct DefSets {
  std::set<uint64_t> Defs[NumRegs];

  bool mergeFrom(const DefSets &O) {
    bool Changed = false;
    for (unsigned R = 0; R < NumRegs; ++R)
      for (uint64_t D : O.Defs[R])
        if (Defs[R].insert(D).second)
          Changed = true;
    return Changed;
  }
};

} // namespace

DefUseChains janitizer::computeDefUse(const ModuleCFG &CFG,
                                      const CfgFunction &F) {
  DefUseChains DU;
  std::map<uint64_t, DefSets> BlockIn;
  for (uint64_t A : F.Blocks)
    BlockIn[A]; // default-construct

  // Iterate to fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint64_t A : F.Blocks) {
      const BasicBlock *BB = CFG.blockAt(A);
      if (!BB)
        continue;
      DefSets Cur = BlockIn[A];
      for (const DecodedInstr &DI : BB->Instrs) {
        uint16_t W = regsWritten(DI.I);
        for (unsigned R = 0; R < NumRegs; ++R)
          if (W & (1u << R)) {
            Cur.Defs[R].clear();
            Cur.Defs[R].insert(DI.Addr);
          }
      }
      for (uint64_t S : BB->Succs) {
        auto It = BlockIn.find(S);
        if (It == BlockIn.end())
          continue;
        if (It->second.mergeFrom(Cur))
          Changed = true;
      }
    }
  }

  // Record chains with a final in-block walk.
  for (uint64_t A : F.Blocks) {
    const BasicBlock *BB = CFG.blockAt(A);
    if (!BB)
      continue;
    DefSets Cur = BlockIn[A];
    for (const DecodedInstr &DI : BB->Instrs) {
      uint16_t Uses = regsRead(DI.I);
      for (unsigned R = 0; R < NumRegs; ++R)
        if (Uses & (1u << R)) {
          auto &Vec = DU.Reaching[{DI.Addr, static_cast<uint8_t>(R)}];
          Vec.assign(Cur.Defs[R].begin(), Cur.Defs[R].end());
        }
      uint16_t W = regsWritten(DI.I);
      for (unsigned R = 0; R < NumRegs; ++R)
        if (W & (1u << R)) {
          Cur.Defs[R].clear();
          Cur.Defs[R].insert(DI.Addr);
        }
    }
  }
  return DU;
}

std::vector<uint64_t> janitizer::traceValueSources(const ModuleCFG &CFG,
                                                   const DefUseChains &DU,
                                                   uint64_t UseAddr, Reg R) {
  std::vector<uint64_t> Out;
  std::set<std::pair<uint64_t, uint8_t>> Seen;
  std::deque<std::pair<uint64_t, Reg>> Work = {{UseAddr, R}};
  while (!Work.empty() && Out.size() < 256) {
    auto [Addr, Rg] = Work.front();
    Work.pop_front();
    if (!Seen.insert({Addr, static_cast<uint8_t>(Rg)}).second)
      continue;
    for (uint64_t Def : DU.reachingDefs(Addr, Rg)) {
      if (std::find(Out.begin(), Out.end(), Def) == Out.end())
        Out.push_back(Def);
      // Follow through register copies and ALU ops: trace their operands.
      const BasicBlock *BB = CFG.blockContaining(Def);
      if (!BB)
        continue;
      for (const DecodedInstr &DI : BB->Instrs) {
        if (DI.Addr != Def)
          continue;
        uint16_t Srcs = regsRead(DI.I);
        for (unsigned SR = 0; SR < NumRegs; ++SR)
          if (Srcs & (1u << SR))
            Work.push_back({Def, static_cast<Reg>(SR)});
        break;
      }
    }
  }
  return Out;
}
