//===- analysis/CodeScan.h - Code-pointer discovery ------------------------===//
///
/// \file
/// Two ways of discovering address-taken code locations in a module:
///
///  1. The BinCFI-style raw scan (§4.2.1): slide a 4-byte window over the
///     module's bytes one byte at a time; for non-PIC modules the window
///     value is an absolute VA, for PIC modules a module-relative offset.
///     A candidate survives if it lands inside an executable section.
///  2. Cross-block static analysis: constants materialized by the code
///     itself — `movq rd, =f` 64-bit immediates and pc-relative LEAs whose
///     target is code. This is what lets JCFI find callback targets that
///     have no 4-byte literal anywhere (PIC code), the case Lockdown's
///     heuristics miss (§6.2.2).
///
/// Policy layers (JCFI, BinCFI, Lockdown) filter these candidates by
/// instruction- or function-boundary, per their respective papers.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_ANALYSIS_CODESCAN_H
#define JANITIZER_ANALYSIS_CODESCAN_H

#include "cfg/CFG.h"

#include <set>
#include <vector>

namespace janitizer {

struct CodeScanResult {
  /// Raw 4-byte-window candidates that land in executable sections
  /// (link-time VAs).
  std::set<uint64_t> WindowHits;
  /// Targets of address-materializing instructions (movq =sym / pc-rel
  /// LEA) that land in executable sections.
  std::set<uint64_t> CodeConstants;
};

/// Scans only data sections (rodata/data/got) with the 4-byte window —
/// the Lockdown-style heuristic that misses register/stack-passed
/// callbacks whose addresses exist only as code immediates.
std::set<uint64_t> scanDataSectionsForCodePointers(const Module &Mod);

/// Full scan: 4-byte window over every section plus code-constant
/// extraction over the decoded CFG.
CodeScanResult scanForCodePointers(const Module &Mod, const ModuleCFG &CFG);

/// Address-taken function entries: candidates filtered to function
/// boundaries known to \p CFG (JCFI's refinement of the BinCFI scan).
std::set<uint64_t> addressTakenFunctions(const Module &Mod,
                                         const ModuleCFG &CFG);

} // namespace janitizer

#endif // JANITIZER_ANALYSIS_CODESCAN_H
