//===- analysis/Loops.h - Natural loops and SCEV-style access analysis ----===//
///
/// \file
/// Detects natural loops, recovers simple affine induction variables
/// (scalar-evolution style, §3.3.2) and classifies memory accesses inside
/// loops:
///
///  - LoopInvariant: the address does not change across iterations and the
///    loop body performs no calls — one check in the preheader replaces the
///    per-iteration check;
///  - IteratorStrided: the address is base + iv*scale + disp with iv
///    running 0..N-1 (init and bound recovered) — checking both endpoints
///    in the preheader replaces per-iteration checks.
///
/// Both eliding transformations require a unique preheader and a call-free,
/// store-to-address-registers-free loop body so the shadow state cannot
/// change mid-loop.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_ANALYSIS_LOOPS_H
#define JANITIZER_ANALYSIS_LOOPS_H

#include "cfg/CFG.h"

#include <optional>
#include <set>
#include <vector>

namespace janitizer {

struct NaturalLoop {
  uint64_t Header = 0;
  uint64_t Latch = 0;           ///< source block of the back edge
  std::set<uint64_t> Body;      ///< block addresses, header included
  uint64_t Preheader = 0;       ///< unique out-of-loop predecessor, or 0
  bool HasCalls = false;        ///< any call or syscall in the body
};

/// A recovered affine induction variable: iv starts at Init, steps by Step
/// each iteration, and the loop runs while iv < Bound (exclusive,
/// recovered from the guarding compare).
struct InductionVar {
  Reg IV = Reg::R0;
  int64_t Init = 0;
  int64_t Step = 0;
  int64_t Bound = 0;
  bool Valid = false;
};

/// A memory access whose per-iteration check can be replaced by preheader
/// check(s).
struct ElidableAccess {
  enum class Kind : uint8_t { LoopInvariant, IteratorStrided };
  Kind K = Kind::LoopInvariant;
  uint64_t InstrAddr = 0;     ///< the access instruction
  uint64_t PreheaderBlock = 0;///< block to carry the hoisted check
  uint64_t AnchorInstr = 0;   ///< preheader instruction to attach rules to
  MemOperand Mem;             ///< operand as written
  unsigned AccessSize = 0;
  /// For IteratorStrided: displacement of the last touched element
  /// (Mem.Disp + (TripCount-1) * scale * step).
  int32_t LastDisp = 0;
};

struct LoopAnalysis {
  std::vector<NaturalLoop> Loops;
  std::vector<InductionVar> Inductions; ///< parallel to Loops
  std::vector<ElidableAccess> Elidable;
};

LoopAnalysis analyzeLoops(const ModuleCFG &CFG);

} // namespace janitizer

#endif // JANITIZER_ANALYSIS_LOOPS_H
