//===- analysis/CodeScan.cpp ----------------------------------------------==//

#include "analysis/CodeScan.h"

#include "support/Endian.h"

using namespace janitizer;

namespace {

/// Interprets a window value as a link-time VA for this module: absolute
/// for non-PIC, module-relative (offset from link base) for PIC.
uint64_t windowToVA(const Module &Mod, uint32_t V) {
  if (Mod.IsPIC)
    return Mod.LinkBase + V;
  return V;
}

void scanSection(const Module &Mod, const Section &S,
                 std::set<uint64_t> &Hits) {
  if (S.Bytes.size() < 4)
    return;
  for (size_t Off = 0; Off + 4 <= S.Bytes.size(); ++Off) {
    uint32_t V = readLE32(S.Bytes.data() + Off);
    if (V == 0)
      continue;
    // For PIC modules windowToVA interprets the constant as a module
    // offset (the §4.2.1 GOT-offset case); for position-dependent modules
    // as an absolute address.
    uint64_t VA = windowToVA(Mod, V);
    if (Mod.isCodeAddress(VA))
      Hits.insert(VA);
  }
}

} // namespace

std::set<uint64_t>
janitizer::scanDataSectionsForCodePointers(const Module &Mod) {
  std::set<uint64_t> Hits;
  for (const Section &S : Mod.Sections)
    if (!isExecutableSection(S.Kind) && S.Kind != SectionKind::Bss)
      scanSection(Mod, S, Hits);
  return Hits;
}

CodeScanResult janitizer::scanForCodePointers(const Module &Mod,
                                              const ModuleCFG &CFG) {
  CodeScanResult R;
  for (const Section &S : Mod.Sections)
    if (S.Kind != SectionKind::Bss)
      scanSection(Mod, S, R.WindowHits);

  // Code constants: immediates and pc-relative address computations in the
  // decoded instruction stream.
  for (const auto &[_, BB] : CFG.Blocks) {
    for (const DecodedInstr &DI : BB.Instrs) {
      const Instruction &I = DI.I;
      if (I.Op == Opcode::MOV_RI64 || I.Op == Opcode::PUSHI64) {
        uint64_t VA = static_cast<uint64_t>(I.Imm);
        if (Mod.isCodeAddress(VA))
          R.CodeConstants.insert(VA);
      } else if (I.Op == Opcode::LEA && I.Mem.PCRel && !I.Mem.HasBase &&
                 !I.Mem.HasIndex) {
        uint64_t VA = DI.Addr + I.Size + static_cast<uint64_t>(
                          static_cast<int64_t>(I.Mem.Disp));
        if (Mod.isCodeAddress(VA))
          R.CodeConstants.insert(VA);
      }
    }
  }
  return R;
}

std::set<uint64_t> janitizer::addressTakenFunctions(const Module &Mod,
                                                    const ModuleCFG &CFG) {
  CodeScanResult R = scanForCodePointers(Mod, CFG);
  std::set<uint64_t> Taken;
  for (uint64_t VA : R.WindowHits)
    if (CFG.isFunctionEntry(VA))
      Taken.insert(VA);
  for (uint64_t VA : R.CodeConstants)
    if (CFG.isFunctionEntry(VA))
      Taken.insert(VA);
  return Taken;
}
