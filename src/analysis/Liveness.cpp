//===- analysis/Liveness.cpp ----------------------------------------------==//

#include "analysis/Liveness.h"

#include <algorithm>
#include <deque>
#include <map>

using namespace janitizer;

namespace {

constexpr uint16_t AlwaysLive = 0; // SP/TP handled in freeRegsAt

/// Exit-live registers at a return, before inter-procedural extension.
constexpr uint16_t ReturnLive =
    CalleeSavedMask | 0x0001 /*R0*/ | (1u << 14) /*SP*/ | (1u << 15) /*TP*/;

struct BlockState {
  LiveState In;  ///< live at block entry
  LiveState Out; ///< live at block exit
};

class LivenessSolver {
public:
  LivenessSolver(const ModuleCFG &CFG, const LivenessOptions &Opts)
      : CFG(CFG), Opts(Opts) {}

  LivenessInfo run();

private:
  /// Transfer across one instruction, backward: Out -> In.
  LiveState transfer(const DecodedInstr &DI, LiveState Out) const;

  /// Live state at the exit of \p BB given current block-in states.
  LiveState exitState(const BasicBlock &BB,
                      const std::map<uint64_t, BlockState> &States,
                      uint64_t FuncEntry) const;

  void solveFunction(const CfgFunction &F);
  void detectConventionBreakers();

  const ModuleCFG &CFG;
  const LivenessOptions &Opts;
  LivenessInfo Info;
  /// Extra registers live at the exit of a function (by entry address),
  /// accumulated from call sites (§4.1.2 ipa-ra handling).
  std::map<uint64_t, uint16_t> ExtraExitLive;
};

LiveState LivenessSolver::transfer(const DecodedInstr &DI,
                                   LiveState Out) const {
  const Instruction &I = DI.I;
  LiveState In = Out;

  CTIKind K = ctiKind(I.Op);
  if (K == CTIKind::DirectCall) {
    // A call defines the caller-saved set (unless the callee is a known
    // convention breaker, handled via ExtraExitLive at the callee) and
    // uses the argument registers plus SP.
    In.Regs &= static_cast<uint16_t>(~CallerSavedMask);
    In.Regs |= ArgRegMask | regBit(Reg::SP);
    In.Flags = false; // flags are not preserved across calls
    return In;
  }
  if (K == CTIKind::IndirectCall) {
    // Unknown callee: conservatively everything except nothing — the
    // target may be anywhere, but the call still obeys call semantics at
    // minimum; we assume all registers and flags are live (§3.3.2).
    In.Regs = 0xFFFF;
    In.Flags = true;
    return In;
  }

  uint16_t Def = regsWritten(I);
  uint16_t Use = regsRead(I);
  In.Regs = static_cast<uint16_t>((Out.Regs & ~Def) | Use);
  if (writesFlags(I.Op))
    In.Flags = false;
  if (readsFlags(I.Op))
    In.Flags = true;
  return In;
}

LiveState LivenessSolver::exitState(
    const BasicBlock &BB, const std::map<uint64_t, BlockState> &States,
    uint64_t FuncEntry) const {
  LiveState Out;
  switch (BB.Term) {
  case CTIKind::Return: {
    Out.Regs = ReturnLive;
    Out.Flags = false;
    if (Opts.InterProcedural) {
      auto It = ExtraExitLive.find(FuncEntry);
      if (It != ExtraExitLive.end())
        Out.Regs |= It->second;
    }
    return Out;
  }
  case CTIKind::IndirectJump:
    // Could be a tail call or a jump table; without resolved targets,
    // assume everything live (§3.3.2).
    Out.Regs = 0xFFFF;
    Out.Flags = true;
    return Out;
  case CTIKind::Halt:
  case CTIKind::Trap:
    return Out; // nothing live after the end of the world
  default:
    break;
  }
  // Union of successor block-in states; unknown successors => all live.
  bool Any = false;
  for (uint64_t S : BB.Succs) {
    auto It = States.find(S);
    if (It == States.end()) {
      Out.Regs = 0xFFFF;
      Out.Flags = true;
      return Out;
    }
    Out.Regs |= It->second.In.Regs;
    Out.Flags = Out.Flags || It->second.In.Flags;
    Any = true;
  }
  if (!Any) {
    // No static successors at all (e.g. block ends in undecodable bytes).
    Out.Regs = 0xFFFF;
    Out.Flags = true;
  }
  return Out;
}

void LivenessSolver::solveFunction(const CfgFunction &F) {
  std::map<uint64_t, BlockState> States;
  for (uint64_t A : F.Blocks)
    States[A] = BlockState();

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Reverse order helps convergence; correctness does not depend on it.
    for (auto It = F.Blocks.rbegin(); It != F.Blocks.rend(); ++It) {
      const BasicBlock *BB = CFG.blockAt(*It);
      if (!BB)
        continue;
      LiveState Out = exitState(*BB, States, F.Entry);
      LiveState In = Out;
      for (auto RI = BB->Instrs.rbegin(); RI != BB->Instrs.rend(); ++RI)
        In = transfer(*RI, In);
      BlockState &BS = States[*It];
      if (In.Regs != BS.In.Regs || In.Flags != BS.In.Flags ||
          Out.Regs != BS.Out.Regs || Out.Flags != BS.Out.Flags) {
        BS.In = In;
        BS.Out = Out;
        Changed = true;
      }
    }
  }

  // Record per-instruction live-in by a final backward walk. The same
  // instruction address can be reached through overlapping decodes (blocks
  // owned by different functions); merge conservatively so any context's
  // live state is respected.
  for (uint64_t A : F.Blocks) {
    const BasicBlock *BB = CFG.blockAt(A);
    if (!BB)
      continue;
    LiveState Cur = exitState(*BB, States, F.Entry);
    for (auto RI = BB->Instrs.rbegin(); RI != BB->Instrs.rend(); ++RI) {
      Cur = transfer(*RI, Cur);
      auto [It, Inserted] = Info.LiveIn.try_emplace(RI->Addr, Cur);
      if (!Inserted) {
        It->second.Regs |= Cur.Regs;
        It->second.Flags = It->second.Flags || Cur.Flags;
      }
    }
  }
}

void LivenessSolver::detectConventionBreakers() {
  // A function that writes a callee-saved register on some path without a
  // matching save/restore pair is flagged. We use a simple, conservative
  // approximation: the register is written by a non-POP instruction and
  // the function contains no PUSH of it.
  for (const CfgFunction &F : CFG.Functions) {
    uint16_t Written = 0;
    uint16_t Pushed = 0;
    for (uint64_t A : F.Blocks) {
      const BasicBlock *BB = CFG.blockAt(A);
      if (!BB)
        continue;
      for (const DecodedInstr &DI : BB->Instrs) {
        if (DI.I.Op == Opcode::PUSH)
          Pushed |= regBit(DI.I.Rd);
        else if (DI.I.Op != Opcode::POP)
          Written |= regsWritten(DI.I);
      }
    }
    uint16_t Clobbered =
        static_cast<uint16_t>(Written & CalleeSavedMask & ~Pushed);
    if (Clobbered)
      Info.ConventionBreakers.insert(F.Entry);
  }
}

LivenessInfo LivenessSolver::run() {
  detectConventionBreakers();

  for (const CfgFunction &F : CFG.Functions)
    solveFunction(F);

  if (!Opts.InterProcedural)
    return std::move(Info);

  // Inter-procedural extension (§4.1.2): for every direct call site,
  // caller-saved registers live *after* the call in the caller were kept
  // live through the callee by an ipa-ra-style contract; add them to the
  // callee's exit-live set and iterate to fixpoint.
  for (int Round = 0; Round < 4; ++Round) {
    bool Grew = false;
    for (const auto &[Addr, BB] : CFG.Blocks) {
      if (BB.Term != CTIKind::DirectCall || !BB.CallTarget)
        continue;
      // Live-in of the fall-through successor = live after the call.
      if (BB.Succs.empty())
        continue;
      const BasicBlock *Next = CFG.blockAt(BB.Succs.front());
      if (!Next || Next->Instrs.empty())
        continue;
      LiveState After = Info.at(Next->Instrs.front().Addr);
      uint16_t Kept =
          static_cast<uint16_t>(After.Regs & CallerSavedMask & ~ArgRegMask);
      // R0 is the return-value register: it being live after the call does
      // not mean the callee must preserve it.
      Kept &= static_cast<uint16_t>(~regBit(Reg::R0));
      if (!Kept)
        continue;
      uint16_t &Extra = ExtraExitLive[BB.CallTarget];
      uint16_t Before = Extra;
      Extra |= Kept;
      if (Extra != Before)
        Grew = true;
    }
    if (!Grew)
      break;
    for (const CfgFunction &F : CFG.Functions)
      if (ExtraExitLive.count(F.Entry))
        solveFunction(F);
  }
  return std::move(Info);
}

} // namespace

LivenessInfo janitizer::computeLiveness(const ModuleCFG &CFG,
                                        const LivenessOptions &Opts) {
  LivenessSolver S(CFG, Opts);
  return S.run();
}
