//===- analysis/Canary.cpp ------------------------------------------------==//

#include "analysis/Canary.h"

#include <deque>
#include <map>

using namespace janitizer;

namespace {

/// SP delta contributed by one instruction, or nullopt if untrackable.
std::optional<int64_t> spEffect(const Instruction &I) {
  switch (I.Op) {
  case Opcode::PUSH:
  case Opcode::PUSHF:
  case Opcode::PUSHI64:
    return -8;
  case Opcode::POP:
  case Opcode::POPF:
    return 8;
  case Opcode::SUBI:
    if (I.Rd == Reg::SP)
      return -I.Imm;
    return 0;
  case Opcode::ADDI:
    if (I.Rd == Reg::SP)
      return I.Imm;
    return 0;
  case Opcode::LEA:
    if (I.Rd == Reg::SP) {
      if (I.Mem.HasBase && I.Mem.Base == Reg::SP && !I.Mem.HasIndex &&
          !I.Mem.PCRel)
        return I.Mem.Disp;
      return std::nullopt;
    }
    return 0;
  case Opcode::CALL:
  case Opcode::CALLR:
  case Opcode::CALLM:
    return 0; // push of return address is matched by the callee's RET
  default:
    if (regsWritten(I) & regBit(Reg::SP))
      return std::nullopt;
    return 0;
  }
}

/// Propagates SP deltas through one function. Blocks whose incoming delta
/// conflicts across predecessors (or whose path contains an untrackable SP
/// update) degrade to "unknown" — their instructions simply get no SpDelta
/// entry — rather than discarding the whole function. Returns true if the
/// entry block is trackable.
bool trackFunctionSp(const ModuleCFG &CFG, const CfgFunction &F,
                     unsigned FuncIdx, StackInfo &Out,
                     std::map<uint64_t, int64_t> &LocalDeltas) {
  // Lattice per block: unset -> known(d) -> unknown. Monotone, so the
  // worklist terminates.
  struct State {
    bool Set = false;
    bool Unknown = false;
    int64_t D = 0;
  };
  std::map<uint64_t, State> BlockIn;
  BlockIn[F.Entry] = {true, false, 0};
  std::deque<uint64_t> Work = {F.Entry};
  int64_t MaxDepth = 0;

  auto Join = [&](uint64_t S, const State &New) {
    State &Cur = BlockIn[S];
    bool Changed = false;
    if (!Cur.Set) {
      Cur = New;
      Changed = true;
    } else if (!Cur.Unknown &&
               (New.Unknown || (New.Set && New.D != Cur.D))) {
      Cur.Unknown = true;
      Changed = true;
    }
    if (Changed)
      Work.push_back(S);
  };

  while (!Work.empty()) {
    uint64_t A = Work.front();
    Work.pop_front();
    const BasicBlock *BB = CFG.blockAt(A);
    if (!BB)
      continue;
    State In = BlockIn[A];
    State Cur = In;
    if (!Cur.Unknown) {
      int64_t D = Cur.D;
      for (const DecodedInstr &DI : BB->Instrs) {
        std::optional<int64_t> Eff = spEffect(DI.I);
        if (!Eff) {
          Cur.Unknown = true;
          break;
        }
        D += *Eff;
        MaxDepth = std::min(MaxDepth, D);
      }
      Cur.D = D;
    }
    for (uint64_t S : BB->Succs)
      Join(S, Cur);
  }

  // Record per-instruction deltas for blocks with known in-deltas. Only
  // blocks this function owns contribute: overlapping decodes reached from
  // bogus scan roots may resynchronize onto the same instruction addresses
  // with different (meaningless) deltas.
  for (uint64_t A : F.Blocks) {
    const BasicBlock *BB = CFG.blockAt(A);
    if (!BB || BB->FuncIdx != FuncIdx)
      continue;
    auto It = BlockIn.find(A);
    if (It == BlockIn.end() || !It->second.Set || It->second.Unknown)
      continue;
    int64_t D = It->second.D;
    for (const DecodedInstr &DI : BB->Instrs) {
      LocalDeltas[DI.Addr] = D;
      std::optional<int64_t> Eff = spEffect(DI.I);
      if (!Eff)
        break;
      D += *Eff;
    }
  }
  // The shared map serves non-canary consumers; real (non-synthetic)
  // functions take precedence over overlapping decodes from scan roots.
  for (auto &[Addr, D] : LocalDeltas)
    if (F.FromSymbol || !Out.SpDelta.count(Addr))
      Out.SpDelta[Addr] = D;
  Out.FrameSize[F.Entry] = -MaxDepth;
  return true;
}

} // namespace

CanaryAnalysis janitizer::analyzeCanaries(const ModuleCFG &CFG) {
  CanaryAnalysis CA;

  std::vector<std::map<uint64_t, int64_t>> LocalDeltas(CFG.Functions.size());
  for (unsigned FI = 0; FI < CFG.Functions.size(); ++FI)
    trackFunctionSp(CFG, CFG.Functions[FI], FI, CA.Stack, LocalDeltas[FI]);

  for (unsigned FI = 0; FI < CFG.Functions.size(); ++FI) {
    const CfgFunction &F = CFG.Functions[FI];
    const std::map<uint64_t, int64_t> &Deltas = LocalDeltas[FI];
    CanarySite Site;
    Site.FuncEntry = F.Entry;
    int64_t SlotVsEntry = 0; // canary slot as entrySP + offset
    bool HaveStore = false;

    for (uint64_t BA : F.Blocks) {
      const BasicBlock *BB = CFG.blockAt(BA);
      if (!BB)
        continue;
      // Block-local register facts: which register currently holds TP.
      uint16_t HoldsTp = 0;
      for (const DecodedInstr &DI : BB->Instrs) {
        const Instruction &I = DI.I;
        // mov rX, tp
        if (I.Op == Opcode::MOV_RR && I.Rs == Reg::TP) {
          HoldsTp |= regBit(I.Rd);
          continue;
        }
        // st8 [sp + K], rX where rX holds TP -> canary spill.
        if (I.Op == Opcode::ST8 && (HoldsTp & regBit(I.Rd)) &&
            I.Mem.HasBase && I.Mem.Base == Reg::SP && !I.Mem.HasIndex &&
            !I.Mem.PCRel) {
          auto DeltaIt = Deltas.find(DI.Addr);
          if (DeltaIt != Deltas.end() && !HaveStore) {
            Site.StoreInstr = DI.Addr;
            Site.SlotOffset = I.Mem.Disp;
            SlotVsEntry = DeltaIt->second + I.Mem.Disp;
            HaveStore = true;
          }
          continue;
        }
        // ld8 rY, [sp + K'] reloading the same frame slot -> epilogue check.
        if (I.Op == Opcode::LD8 && HaveStore && I.Mem.HasBase &&
            I.Mem.Base == Reg::SP && !I.Mem.HasIndex && !I.Mem.PCRel) {
          auto DeltaIt = Deltas.find(DI.Addr);
          if (DeltaIt != Deltas.end() &&
              DeltaIt->second + I.Mem.Disp == SlotVsEntry)
            Site.CheckLoads.push_back(DI.Addr);
          continue;
        }
        uint16_t W = regsWritten(I);
        HoldsTp &= static_cast<uint16_t>(~W);
      }
    }
    if (HaveStore && !Site.CheckLoads.empty())
      CA.Sites.push_back(std::move(Site));
  }
  return CA;
}
