//===- examples/cfi_hijack_demo.cpp - Stopping a control-flow hijack ------===//
///
/// A vulnerable "message handler" copies attacker-controlled heap data
/// over a stack buffer, overwriting the return address with the address of
/// a privileged function. Run natively the hijack succeeds; under JCFI the
/// shadow stack stops it at the corrupted return.
///
/// Build & run:  ./build/examples/cfi_hijack_demo
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jcfi/JCFI.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"

#include <cstdio>

using namespace janitizer;

int main() {
  const char *Source = R"(
    .module victim
    .entry main
    .needed libjz.so
    .extern malloc
    .extern print_str
    .section rodata
    pwned: .string "privileged operation executed!\n"
    safe:  .string "handled message safely\n"
    .section text
    .func privileged
    privileged:
      la r0, pwned
      call print_str
      movi r0, 66
      syscall 0
    .endfunc
    ; handle(r0 = message ptr, r1 = length): copies into a 16-byte stack
    ; buffer without a bounds check.
    .func handle
    handle:
      subi sp, 16
      movi r5, 0
    h_copy:
      cmp r5, r1
      jae h_done
      ld1 r6, [r0 + r5]
      st1 [sp + r5], r6          ; off-by-attacker: r1 may exceed 16
      addi r5, 1
      jmp h_copy
    h_done:
      addi sp, 16
      ret                        ; returns into attacker-chosen code
    .endfunc
    .func main
    main:
      ; Build the malicious message on the heap: 16 filler bytes followed
      ; by the address of 'privileged' (the forged return address).
      movi r0, 32
      call malloc
      mov r9, r0
      la r1, privileged
      st8 [r9 + 16], r1
      mov r0, r9
      movi r1, 24
      call handle
      la r0, safe
      call print_str
      movi r0, 0
      syscall 0
    .endfunc
  )";

  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  auto Victim = assembleModule(Source);
  if (!Victim) {
    std::fprintf(stderr, "assembly failed: %s\n", Victim.message().c_str());
    return 1;
  }
  Store.add(*Victim);

  // Native: the hijack works.
  {
    Process P(Store);
    if (Error E = P.loadProgram("victim")) {
      std::fprintf(stderr, "%s\n", E.message().c_str());
      return 1;
    }
    RunResult R = P.runNative();
    std::printf("--- native run ---\n%s(exit code %d: attacker wins)\n\n",
                P.output().c_str(), R.ExitCode);
    if (R.ExitCode != 66)
      return 1;
  }

  // Under JCFI: the corrupted return is caught by the shadow stack.
  {
    JcfiDatabase Db;
    RuleStore Rules;
    StaticAnalyzer SA;
    JCFITool StaticPass(Db);
    StaticPass.setStaticOutput(&Db);
    if (Error E = SA.analyzeProgram(Store, "victim", StaticPass, Rules)) {
      std::fprintf(stderr, "%s\n", E.message().c_str());
      return 1;
    }
    JCFIOptions Opts;
    Opts.AbortOnViolation = true;
    JCFITool Jcfi(Db, Opts);
    JanitizerRun R = runUnderJanitizer(Store, "victim", Jcfi, Rules);
    std::printf("--- JCFI run ---\n");
    if (R.Result.St == RunResult::Status::Trapped &&
        !R.Violations.empty()) {
      std::printf("hijack blocked: %s (forged return to 0x%llx)\n",
                  R.Violations[0].What.c_str(),
                  static_cast<unsigned long long>(R.Violations[0].Detail));
      std::printf("cfi_hijack_demo OK.\n");
      return 0;
    }
    std::printf("hijack was NOT blocked (unexpected)\n");
    return 1;
  }
}
