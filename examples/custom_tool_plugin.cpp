//===- examples/custom_tool_plugin.cpp - Writing your own security tool ---===//
///
/// Janitizer's plug-in surface (§3.4.3): a custom technique provides a
/// static pass (full cross-block analyses available) and a per-block
/// dynamic fallback. This demo implements "StoreGuard", a write-integrity
/// checker in the spirit of data-flow-integrity lite:
///
///  - the static pass uses the def-use chains (§3.3.3) to classify stores
///    whose address derives purely from the stack pointer as "frame
///    local", and emits rules only for the remaining (escaping) stores;
///  - the dynamic side counts both classes, and for escaping stores
///    verifies the target is not inside any module's code — a W^X-style
///    invariant no store may violate;
///  - the fallback conservatively treats every store of unseen blocks as
///    escaping.
///
/// Build & run:  ./build/examples/custom_tool_plugin
///
//===----------------------------------------------------------------------===//

#include "analysis/DefUse.h"
#include "baselines/OperandPack.h"
#include "core/JanitizerDynamic.h"
#include "core/StaticAnalyzer.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"

#include <cstdio>

using namespace janitizer;

namespace {

/// Rule Data[0] values for StoreGuard's single rule kind (it reuses the
/// generic AsanCheck slot id-space is tool-private, so any id works; a
/// real tool would add its own RuleId).
constexpr uint64_t StoreEscaping = 1;

class StoreGuard : public SecurityTool {
public:
  uint64_t FrameLocalStores = 0;
  uint64_t EscapingStores = 0;
  uint64_t WxViolations = 0;

  std::string name() const override { return "storeguard"; }

  void runStaticPass(const StaticContext &Ctx, RuleFile &Out) override {
    for (const CfgFunction &F : Ctx.CFG.Functions) {
      DefUseChains DU = computeDefUse(Ctx.CFG, F);
      for (uint64_t BA : F.Blocks) {
        const BasicBlock *BB = Ctx.CFG.blockAt(BA);
        if (!BB)
          continue;
        for (const DecodedInstr &DI : BB->Instrs) {
          if (!isStore(DI.I.Op))
            continue;
          RewriteRule R;
          R.Id = RuleId::AsanCheck; // tool-private meaning: "store site"
          R.BBAddr = BA;
          R.InstrAddr = DI.Addr;
          R.Data[0] = isFrameLocal(Ctx.CFG, DU, DI) ? 0 : StoreEscaping;
          Out.Rules.push_back(R);
        }
      }
    }
  }

  void instrumentWithRules(
      JanitizerDynamic &D, CacheBlock &Block, BlockBuilder &B,
      const std::vector<DecodedInstrRT> &Instrs,
      const std::unordered_map<uint64_t, std::vector<RewriteRule>> &InstrRules)
      override {
    for (const DecodedInstrRT &DI : Instrs) {
      auto It = InstrRules.find(DI.Addr);
      if (It != InstrRules.end())
        for (const RewriteRule &R : It->second)
          if (R.Id == RuleId::AsanCheck)
            B.inlineHook(/*HookId=*/R.Data[0] == StoreEscaping ? 2 : 1,
                         packOperand(DI.I.Mem, DI.I.Size), DI.Addr,
                         R.Data[0] == StoreEscaping ? 6 : 1);
      B.app(DI.I, DI.Addr);
    }
  }

  void instrumentFallback(JanitizerDynamic &D, CacheBlock &Block,
                          BlockBuilder &B,
                          const std::vector<DecodedInstrRT> &Instrs) override {
    // No cross-block information: every store is treated as escaping.
    for (const DecodedInstrRT &DI : Instrs) {
      if (isStore(DI.I.Op))
        B.inlineHook(2, packOperand(DI.I.Mem, DI.I.Size), DI.Addr, 6);
      B.app(DI.I, DI.Addr);
    }
  }

  HookAction onHook(JanitizerDynamic &D, const CacheOp &Op) override {
    if (Op.HookId == 1) {
      ++FrameLocalStores;
      return HookAction::Continue;
    }
    ++EscapingStores;
    uint64_t Addr =
        evalPackedOperand(D.machine(), Op.HookData[0], Op.HookData[1]);
    if (D.machine().Mem.isExecutable(Addr)) {
      ++WxViolations;
      D.engine().recordViolation(3, Op.HookData[1], Addr, "store-to-code");
      return HookAction::Violation;
    }
    return HookAction::Continue;
  }

private:
  /// A store is frame local when its base register's value derives only
  /// from SP (traced through the def-use chains).
  static bool isFrameLocal(const ModuleCFG &CFG, const DefUseChains &DU,
                           const DecodedInstr &DI) {
    const MemOperand &M = DI.I.Mem;
    if (!M.HasBase || M.HasIndex)
      return M.HasBase && M.Base == Reg::SP && !M.HasIndex;
    if (M.Base == Reg::SP)
      return true;
    // Base defined by LEA from SP?
    for (uint64_t Def : DU.reachingDefs(DI.Addr, M.Base)) {
      const BasicBlock *BB = CFG.blockContaining(Def);
      if (!BB)
        return false;
      for (const DecodedInstr &K : BB->Instrs)
        if (K.Addr == Def)
          if (!(K.I.Op == Opcode::LEA && K.I.Mem.HasBase &&
                K.I.Mem.Base == Reg::SP))
            return false;
    }
    return !DU.reachingDefs(DI.Addr, M.Base).empty();
  }
};

} // namespace

int main() {
  const char *Source = R"(
    .module app
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      subi sp, 32
      movi r1, 7
      st8 [sp + 8], r1       ; frame local
      lea r2, [sp + 16]
      movi r1, 9
      st8 [r2], r1           ; frame local through LEA
      movi r0, 32
      call malloc
      movi r1, 5
      st8 [r0 + 8], r1       ; escaping (heap)
      ; a store aimed at code: the W^X violation StoreGuard flags
      la r2, main
      movi r1, 0x90
      st1 [r2], r1
      addi sp, 32
      movi r0, 0
      syscall 0
    .endfunc
  )";

  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  auto App = assembleModule(Source);
  if (!App) {
    std::fprintf(stderr, "assembly failed: %s\n", App.message().c_str());
    return 1;
  }
  Store.add(*App);

  RuleStore Rules;
  StaticAnalyzer SA;
  StoreGuard StaticPass;
  if (Error E = SA.analyzeProgram(Store, "app", StaticPass, Rules)) {
    std::fprintf(stderr, "%s\n", E.message().c_str());
    return 1;
  }

  StoreGuard Tool;
  JanitizerRun R = runUnderJanitizer(Store, "app", Tool, Rules);
  std::printf("frame-local stores:  %llu (cheap path, proven by def-use "
              "tracing)\n",
              static_cast<unsigned long long>(Tool.FrameLocalStores));
  std::printf("escaping stores:     %llu (checked)\n",
              static_cast<unsigned long long>(Tool.EscapingStores));
  std::printf("W^X violations:      %llu\n",
              static_cast<unsigned long long>(Tool.WxViolations));
  for (const Violation &V : R.Violations)
    std::printf("VIOLATION: %s at pc=0x%llx addr=0x%llx\n", V.What.c_str(),
                static_cast<unsigned long long>(V.PC),
                static_cast<unsigned long long>(V.Detail));
  if (Tool.WxViolations == 1 && Tool.FrameLocalStores >= 2) {
    std::printf("custom_tool_plugin OK.\n");
    return 0;
  }
  std::printf("demo failed\n");
  return 1;
}
