//===- examples/quickstart.cpp - Five-minute tour of Janitizer ------------===//
///
/// Assembles a small guest program with a heap overflow, analyzes it
/// statically, and runs it under the hybrid JASan sanitizer:
///
///   1. build the module store (program + the guest runtime libjz.so);
///   2. run the static analyzer once per module, producing rewrite rules;
///   3. execute under the dynamic modifier with the JASan plug-in.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"

#include <cstdio>

using namespace janitizer;

int main() {
  // A buggy program: writes one element past a 32-byte heap buffer.
  const char *Source = R"(
    .module demo
    .entry main
    .needed libjz.so
    .extern malloc
    .extern print_u64
    .func main
    main:
      movi r0, 32
      call malloc
      mov r9, r0
      movi r1, 0
    fill:
      st8 [r9 + r1*8], r1      ; 5 iterations x 8 bytes = 40 > 32!
      addi r1, 1
      cmpi r1, 5
      jl fill
      ld8 r0, [r9]
      call print_u64
      movi r0, 0
      syscall 0
    .endfunc
  )";

  // 1. Module store: the "filesystem" the loader reads from.
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  auto Demo = assembleModule(Source);
  if (!Demo) {
    std::fprintf(stderr, "assembly failed: %s\n", Demo.message().c_str());
    return 1;
  }
  Store.add(*Demo);

  // 2. Static analysis: one rewrite-rule file per module (the shared
  //    library is analyzed once and would be reused by other programs).
  RuleStore Rules;
  StaticAnalyzer Analyzer;
  JASanTool StaticPass;
  if (Error E = Analyzer.analyzeProgram(Store, "demo", StaticPass, Rules)) {
    std::fprintf(stderr, "static analysis failed: %s\n", E.message().c_str());
    return 1;
  }
  std::printf("static analysis: %zu modules, %zu blocks, %zu rules "
              "(%zu no-op markers)\n",
              Analyzer.stats().ModulesAnalyzed,
              Analyzer.stats().BlocksDiscovered,
              Analyzer.stats().RulesEmitted, Analyzer.stats().NoOpRules);

  // 3. Run under the dynamic modifier with the JASan plug-in.
  JASanTool Jasan;
  JanitizerRun R = runUnderJanitizer(Store, "demo", Jasan, Rules);

  std::printf("program output: \"%s\"\n", R.Output.c_str());
  std::printf("blocks: %llu statically analyzed, %llu dynamic-only "
              "(%.1f%% dynamic)\n",
              static_cast<unsigned long long>(R.Coverage.StaticBlocks),
              static_cast<unsigned long long>(R.Coverage.DynamicBlocks),
              R.Coverage.dynamicFraction() * 100);
  for (const Violation &V : R.Violations)
    std::printf("VIOLATION: %s at pc=0x%llx addr=0x%llx\n", V.What.c_str(),
                static_cast<unsigned long long>(V.PC),
                static_cast<unsigned long long>(V.Detail));
  if (R.Violations.empty()) {
    std::printf("no violations found (unexpected for this demo!)\n");
    return 1;
  }
  std::printf("quickstart OK: the overflow was caught.\n");
  return 0;
}
