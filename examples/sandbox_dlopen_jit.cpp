//===- examples/sandbox_dlopen_jit.cpp - Covering dynamic code -------------===//
///
/// The coverage story (§3.4): code can enter a process after static
/// analysis is long done — dlopened plugins the ldd walk never saw, and
/// JIT-generated code that never existed on disk. This demo builds a host
/// program that dlopens a plugin and JITs a small kernel, runs it under
/// hybrid JASan, and shows (a) the static/dynamic block classification and
/// (b) a heap overflow *inside the JIT code* still being caught by the
/// dynamic fallback pass.
///
/// Build & run:  ./build/examples/sandbox_dlopen_jit
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"

#include <cstdio>

using namespace janitizer;

int main() {
  // A plugin that will be dlopened: invisible to the static dependency
  // walk, so no rewrite rules exist for it.
  const char *PluginSource = R"(
    .module plugin.so
    .pic
    .shared
    .global transform
    .func transform
    transform:
      muli r0, 3
      addi r0, 1
      ret
    .endfunc
  )";

  // Host: dlopens the plugin; also JITs "ld8 r1, [r9 + 40]; ret" — an
  // out-of-bounds read against a 32-byte allocation, generated at run
  // time, so only the dynamic fallback can instrument it.
  const char *HostSource = R"(
    .module host
    .entry main
    .needed libjz.so
    .extern malloc
    .extern print_u64
    .section rodata
    pname: .string "plugin.so"
    tname: .string "transform"
    .func main
    main:
      la r0, pname
      syscall 4            ; dlopen
      la r1, tname
      syscall 5            ; dlsym
      mov r10, r0          ; transform()
      movi r0, 32
      call malloc
      mov r9, r0           ; heap buffer (32 bytes)
      ; JIT: ld8 r1, [r9 + 40] ; ret   (reads past the buffer)
      movi r0, 16
      syscall 2            ; sbrk scratch
      mov r11, r0
      movi r1, 0x0109      ; ld8 opcode + rd=r1
      st2 [r11], r1
      movi r1, 0x1090      ; mem byte: base=r9, hasBase
      st2 [r11 + 2], r1
      movi r1, 40
      st4 [r11 + 4], r1
      movi r1, 0x45        ; ret
      st1 [r11 + 8], r1
      mov r0, r11
      movi r1, 9
      syscall 3            ; map as code
      ; Use the plugin...
      movi r0, 13
      callr r10            ; transform(13) = 40
      call print_u64
      ; ...then run the JIT kernel (out-of-bounds read).
      callr r11
      movi r0, 0
      syscall 0
    .endfunc
  )";

  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  auto Plugin = assembleModule(PluginSource);
  auto Host = assembleModule(HostSource);
  if (!Plugin || !Host) {
    std::fprintf(stderr, "assembly failed: %s%s\n",
                 Plugin ? "" : Plugin.message().c_str(),
                 Host ? "" : Host.message().c_str());
    return 1;
  }
  Store.add(*Plugin);
  Store.add(*Host);

  // Static analysis walks only the DT_NEEDED closure — it cannot see the
  // plugin (dlopen), let alone the JIT code.
  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticPass;
  if (Error E = SA.analyzeProgram(Store, "host", StaticPass, Rules,
                                  /*SkipModules=*/{"plugin.so"})) {
    std::fprintf(stderr, "%s\n", E.message().c_str());
    return 1;
  }

  JASanTool Jasan;
  JanitizerRun R = runUnderJanitizer(Store, "host", Jasan, Rules);
  std::printf("program output: \"%s\" (expect 40)\n", R.Output.c_str());
  std::printf("coverage: %llu static blocks, %llu dynamically analyzed "
              "blocks (plugin + JIT + loader startup)\n",
              static_cast<unsigned long long>(R.Coverage.StaticBlocks),
              static_cast<unsigned long long>(R.Coverage.DynamicBlocks));
  for (const Violation &V : R.Violations)
    std::printf("VIOLATION in dynamic code: %s at pc=0x%llx addr=0x%llx\n",
                V.What.c_str(), static_cast<unsigned long long>(V.PC),
                static_cast<unsigned long long>(V.Detail));
  bool CaughtJitBug = !R.Violations.empty();
  bool PluginCovered = R.Coverage.DynamicBlocks > 0;
  if (CaughtJitBug && PluginCovered && R.Output == "40") {
    std::printf("sandbox_dlopen_jit OK: dynamically generated code is "
                "covered.\n");
    return 0;
  }
  std::printf("demo failed\n");
  return 1;
}
