file(REMOVE_RECURSE
  "libjz_vm.a"
)
