file(REMOVE_RECURSE
  "CMakeFiles/jz_vm.dir/Machine.cpp.o"
  "CMakeFiles/jz_vm.dir/Machine.cpp.o.d"
  "CMakeFiles/jz_vm.dir/Memory.cpp.o"
  "CMakeFiles/jz_vm.dir/Memory.cpp.o.d"
  "CMakeFiles/jz_vm.dir/Process.cpp.o"
  "CMakeFiles/jz_vm.dir/Process.cpp.o.d"
  "libjz_vm.a"
  "libjz_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
