# Empty compiler generated dependencies file for jz_vm.
# This may be replaced when dependencies are built.
