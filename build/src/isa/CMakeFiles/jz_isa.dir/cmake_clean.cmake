file(REMOVE_RECURSE
  "CMakeFiles/jz_isa.dir/Encoding.cpp.o"
  "CMakeFiles/jz_isa.dir/Encoding.cpp.o.d"
  "CMakeFiles/jz_isa.dir/Instruction.cpp.o"
  "CMakeFiles/jz_isa.dir/Instruction.cpp.o.d"
  "CMakeFiles/jz_isa.dir/Opcodes.cpp.o"
  "CMakeFiles/jz_isa.dir/Opcodes.cpp.o.d"
  "CMakeFiles/jz_isa.dir/Printer.cpp.o"
  "CMakeFiles/jz_isa.dir/Printer.cpp.o.d"
  "CMakeFiles/jz_isa.dir/Registers.cpp.o"
  "CMakeFiles/jz_isa.dir/Registers.cpp.o.d"
  "libjz_isa.a"
  "libjz_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
