file(REMOVE_RECURSE
  "libjz_isa.a"
)
