# Empty compiler generated dependencies file for jz_isa.
# This may be replaced when dependencies are built.
