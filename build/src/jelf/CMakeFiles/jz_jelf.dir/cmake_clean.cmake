file(REMOVE_RECURSE
  "CMakeFiles/jz_jelf.dir/Module.cpp.o"
  "CMakeFiles/jz_jelf.dir/Module.cpp.o.d"
  "libjz_jelf.a"
  "libjz_jelf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_jelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
