# Empty dependencies file for jz_jelf.
# This may be replaced when dependencies are built.
