file(REMOVE_RECURSE
  "libjz_jelf.a"
)
