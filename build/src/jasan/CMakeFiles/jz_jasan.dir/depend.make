# Empty dependencies file for jz_jasan.
# This may be replaced when dependencies are built.
