file(REMOVE_RECURSE
  "CMakeFiles/jz_jasan.dir/JASan.cpp.o"
  "CMakeFiles/jz_jasan.dir/JASan.cpp.o.d"
  "libjz_jasan.a"
  "libjz_jasan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_jasan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
