file(REMOVE_RECURSE
  "libjz_jasan.a"
)
