file(REMOVE_RECURSE
  "CMakeFiles/jz_runtime.dir/Jlibc.cpp.o"
  "CMakeFiles/jz_runtime.dir/Jlibc.cpp.o.d"
  "libjz_runtime.a"
  "libjz_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
