# Empty dependencies file for jz_runtime.
# This may be replaced when dependencies are built.
