file(REMOVE_RECURSE
  "libjz_runtime.a"
)
