file(REMOVE_RECURSE
  "libjz_rules.a"
)
