# Empty dependencies file for jz_rules.
# This may be replaced when dependencies are built.
