file(REMOVE_RECURSE
  "CMakeFiles/jz_rules.dir/RewriteRules.cpp.o"
  "CMakeFiles/jz_rules.dir/RewriteRules.cpp.o.d"
  "libjz_rules.a"
  "libjz_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
