file(REMOVE_RECURSE
  "CMakeFiles/jz_dbi.dir/Dbi.cpp.o"
  "CMakeFiles/jz_dbi.dir/Dbi.cpp.o.d"
  "libjz_dbi.a"
  "libjz_dbi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_dbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
