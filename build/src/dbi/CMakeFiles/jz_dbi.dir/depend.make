# Empty dependencies file for jz_dbi.
# This may be replaced when dependencies are built.
