file(REMOVE_RECURSE
  "libjz_dbi.a"
)
