# Empty compiler generated dependencies file for jz_core.
# This may be replaced when dependencies are built.
