file(REMOVE_RECURSE
  "libjz_core.a"
)
