file(REMOVE_RECURSE
  "CMakeFiles/jz_core.dir/JanitizerDynamic.cpp.o"
  "CMakeFiles/jz_core.dir/JanitizerDynamic.cpp.o.d"
  "CMakeFiles/jz_core.dir/StaticAnalyzer.cpp.o"
  "CMakeFiles/jz_core.dir/StaticAnalyzer.cpp.o.d"
  "libjz_core.a"
  "libjz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
