file(REMOVE_RECURSE
  "libjz_support.a"
)
