file(REMOVE_RECURSE
  "CMakeFiles/jz_support.dir/Error.cpp.o"
  "CMakeFiles/jz_support.dir/Error.cpp.o.d"
  "CMakeFiles/jz_support.dir/Format.cpp.o"
  "CMakeFiles/jz_support.dir/Format.cpp.o.d"
  "libjz_support.a"
  "libjz_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
