# Empty compiler generated dependencies file for jz_support.
# This may be replaced when dependencies are built.
