file(REMOVE_RECURSE
  "CMakeFiles/jz_jasm.dir/Assembler.cpp.o"
  "CMakeFiles/jz_jasm.dir/Assembler.cpp.o.d"
  "libjz_jasm.a"
  "libjz_jasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_jasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
