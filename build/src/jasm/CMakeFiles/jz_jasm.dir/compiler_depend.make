# Empty compiler generated dependencies file for jz_jasm.
# This may be replaced when dependencies are built.
