file(REMOVE_RECURSE
  "libjz_jasm.a"
)
