
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Canary.cpp" "src/analysis/CMakeFiles/jz_analysis.dir/Canary.cpp.o" "gcc" "src/analysis/CMakeFiles/jz_analysis.dir/Canary.cpp.o.d"
  "/root/repo/src/analysis/CodeScan.cpp" "src/analysis/CMakeFiles/jz_analysis.dir/CodeScan.cpp.o" "gcc" "src/analysis/CMakeFiles/jz_analysis.dir/CodeScan.cpp.o.d"
  "/root/repo/src/analysis/DefUse.cpp" "src/analysis/CMakeFiles/jz_analysis.dir/DefUse.cpp.o" "gcc" "src/analysis/CMakeFiles/jz_analysis.dir/DefUse.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/analysis/CMakeFiles/jz_analysis.dir/Liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/jz_analysis.dir/Liveness.cpp.o.d"
  "/root/repo/src/analysis/Loops.cpp" "src/analysis/CMakeFiles/jz_analysis.dir/Loops.cpp.o" "gcc" "src/analysis/CMakeFiles/jz_analysis.dir/Loops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/jz_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/jz_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/jelf/CMakeFiles/jz_jelf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jz_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
