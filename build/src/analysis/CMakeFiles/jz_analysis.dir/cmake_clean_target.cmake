file(REMOVE_RECURSE
  "libjz_analysis.a"
)
