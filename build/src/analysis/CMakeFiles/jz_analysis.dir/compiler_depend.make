# Empty compiler generated dependencies file for jz_analysis.
# This may be replaced when dependencies are built.
