file(REMOVE_RECURSE
  "CMakeFiles/jz_analysis.dir/Canary.cpp.o"
  "CMakeFiles/jz_analysis.dir/Canary.cpp.o.d"
  "CMakeFiles/jz_analysis.dir/CodeScan.cpp.o"
  "CMakeFiles/jz_analysis.dir/CodeScan.cpp.o.d"
  "CMakeFiles/jz_analysis.dir/DefUse.cpp.o"
  "CMakeFiles/jz_analysis.dir/DefUse.cpp.o.d"
  "CMakeFiles/jz_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/jz_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/jz_analysis.dir/Loops.cpp.o"
  "CMakeFiles/jz_analysis.dir/Loops.cpp.o.d"
  "libjz_analysis.a"
  "libjz_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
