# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("jelf")
subdirs("jasm")
subdirs("vm")
subdirs("runtime")
subdirs("cfg")
subdirs("analysis")
subdirs("rules")
subdirs("dbi")
subdirs("core")
subdirs("jasan")
subdirs("jcfi")
subdirs("baselines")
subdirs("workloads")
