file(REMOVE_RECURSE
  "libjz_cfg.a"
)
