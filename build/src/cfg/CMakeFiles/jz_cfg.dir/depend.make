# Empty dependencies file for jz_cfg.
# This may be replaced when dependencies are built.
