file(REMOVE_RECURSE
  "CMakeFiles/jz_cfg.dir/CFG.cpp.o"
  "CMakeFiles/jz_cfg.dir/CFG.cpp.o.d"
  "libjz_cfg.a"
  "libjz_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
