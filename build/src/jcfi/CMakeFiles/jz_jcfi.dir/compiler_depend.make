# Empty compiler generated dependencies file for jz_jcfi.
# This may be replaced when dependencies are built.
