file(REMOVE_RECURSE
  "libjz_jcfi.a"
)
