file(REMOVE_RECURSE
  "CMakeFiles/jz_jcfi.dir/Air.cpp.o"
  "CMakeFiles/jz_jcfi.dir/Air.cpp.o.d"
  "CMakeFiles/jz_jcfi.dir/JCFI.cpp.o"
  "CMakeFiles/jz_jcfi.dir/JCFI.cpp.o.d"
  "libjz_jcfi.a"
  "libjz_jcfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_jcfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
