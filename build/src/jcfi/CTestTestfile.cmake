# CMake generated Testfile for 
# Source directory: /root/repo/src/jcfi
# Build directory: /root/repo/build/src/jcfi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
