file(REMOVE_RECURSE
  "libjz_workloads.a"
)
