file(REMOVE_RECURSE
  "CMakeFiles/jz_workloads.dir/JulietGen.cpp.o"
  "CMakeFiles/jz_workloads.dir/JulietGen.cpp.o.d"
  "CMakeFiles/jz_workloads.dir/SpecProfiles.cpp.o"
  "CMakeFiles/jz_workloads.dir/SpecProfiles.cpp.o.d"
  "CMakeFiles/jz_workloads.dir/WorkloadGen.cpp.o"
  "CMakeFiles/jz_workloads.dir/WorkloadGen.cpp.o.d"
  "libjz_workloads.a"
  "libjz_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
