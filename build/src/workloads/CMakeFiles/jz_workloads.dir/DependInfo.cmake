
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/JulietGen.cpp" "src/workloads/CMakeFiles/jz_workloads.dir/JulietGen.cpp.o" "gcc" "src/workloads/CMakeFiles/jz_workloads.dir/JulietGen.cpp.o.d"
  "/root/repo/src/workloads/SpecProfiles.cpp" "src/workloads/CMakeFiles/jz_workloads.dir/SpecProfiles.cpp.o" "gcc" "src/workloads/CMakeFiles/jz_workloads.dir/SpecProfiles.cpp.o.d"
  "/root/repo/src/workloads/WorkloadGen.cpp" "src/workloads/CMakeFiles/jz_workloads.dir/WorkloadGen.cpp.o" "gcc" "src/workloads/CMakeFiles/jz_workloads.dir/WorkloadGen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/jz_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/jasm/CMakeFiles/jz_jasm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/jz_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/jz_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jz_support.dir/DependInfo.cmake"
  "/root/repo/build/src/jelf/CMakeFiles/jz_jelf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
