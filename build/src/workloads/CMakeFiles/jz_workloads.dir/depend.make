# Empty dependencies file for jz_workloads.
# This may be replaced when dependencies are built.
