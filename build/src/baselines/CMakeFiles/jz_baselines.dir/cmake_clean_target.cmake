file(REMOVE_RECURSE
  "libjz_baselines.a"
)
