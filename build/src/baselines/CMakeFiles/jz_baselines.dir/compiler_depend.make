# Empty compiler generated dependencies file for jz_baselines.
# This may be replaced when dependencies are built.
