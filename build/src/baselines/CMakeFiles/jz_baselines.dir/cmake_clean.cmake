file(REMOVE_RECURSE
  "CMakeFiles/jz_baselines.dir/BinCFI.cpp.o"
  "CMakeFiles/jz_baselines.dir/BinCFI.cpp.o.d"
  "CMakeFiles/jz_baselines.dir/Lockdown.cpp.o"
  "CMakeFiles/jz_baselines.dir/Lockdown.cpp.o.d"
  "CMakeFiles/jz_baselines.dir/RetroWrite.cpp.o"
  "CMakeFiles/jz_baselines.dir/RetroWrite.cpp.o.d"
  "CMakeFiles/jz_baselines.dir/StaticRewriter.cpp.o"
  "CMakeFiles/jz_baselines.dir/StaticRewriter.cpp.o.d"
  "CMakeFiles/jz_baselines.dir/ValgrindASan.cpp.o"
  "CMakeFiles/jz_baselines.dir/ValgrindASan.cpp.o.d"
  "libjz_baselines.a"
  "libjz_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
