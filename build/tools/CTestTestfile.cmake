# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_objdump_libjz "/root/repo/build/tools/jz-objdump" "libjz" "--cfg" "--analysis")
set_tests_properties(tool_objdump_libjz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_objdump_rules "/root/repo/build/tools/jz-objdump" "libjfortran" "--rules" "jasan")
set_tests_properties(tool_objdump_rules PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_bench_single "/root/repo/build/tools/jz-bench" "bzip2" "jasan-hybrid" "1")
set_tests_properties(tool_bench_single PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
