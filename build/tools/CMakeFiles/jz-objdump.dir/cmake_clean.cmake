file(REMOVE_RECURSE
  "CMakeFiles/jz-objdump.dir/jz-objdump.cpp.o"
  "CMakeFiles/jz-objdump.dir/jz-objdump.cpp.o.d"
  "jz-objdump"
  "jz-objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz-objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
