# Empty dependencies file for jz-objdump.
# This may be replaced when dependencies are built.
