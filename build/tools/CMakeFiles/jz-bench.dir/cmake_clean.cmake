file(REMOVE_RECURSE
  "CMakeFiles/jz-bench.dir/jz-bench.cpp.o"
  "CMakeFiles/jz-bench.dir/jz-bench.cpp.o.d"
  "jz-bench"
  "jz-bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz-bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
