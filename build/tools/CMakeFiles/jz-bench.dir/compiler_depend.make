# Empty compiler generated dependencies file for jz-bench.
# This may be replaced when dependencies are built.
