# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/dbi_test[1]_include.cmake")
include("/root/repo/build/tests/jasan_test[1]_include.cmake")
include("/root/repo/build/tests/jcfi_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
