# Empty compiler generated dependencies file for jcfi_test.
# This may be replaced when dependencies are built.
