file(REMOVE_RECURSE
  "CMakeFiles/jcfi_test.dir/jcfi_test.cpp.o"
  "CMakeFiles/jcfi_test.dir/jcfi_test.cpp.o.d"
  "jcfi_test"
  "jcfi_test.pdb"
  "jcfi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jcfi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
