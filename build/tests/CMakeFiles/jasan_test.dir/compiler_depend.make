# Empty compiler generated dependencies file for jasan_test.
# This may be replaced when dependencies are built.
