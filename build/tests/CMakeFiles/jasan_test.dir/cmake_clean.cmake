file(REMOVE_RECURSE
  "CMakeFiles/jasan_test.dir/jasan_test.cpp.o"
  "CMakeFiles/jasan_test.dir/jasan_test.cpp.o.d"
  "jasan_test"
  "jasan_test.pdb"
  "jasan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jasan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
