# Empty compiler generated dependencies file for dbi_test.
# This may be replaced when dependencies are built.
