file(REMOVE_RECURSE
  "CMakeFiles/dbi_test.dir/dbi_test.cpp.o"
  "CMakeFiles/dbi_test.dir/dbi_test.cpp.o.d"
  "dbi_test"
  "dbi_test.pdb"
  "dbi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
