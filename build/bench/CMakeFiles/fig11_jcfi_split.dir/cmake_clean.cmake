file(REMOVE_RECURSE
  "CMakeFiles/fig11_jcfi_split.dir/fig11_jcfi_split.cpp.o"
  "CMakeFiles/fig11_jcfi_split.dir/fig11_jcfi_split.cpp.o.d"
  "fig11_jcfi_split"
  "fig11_jcfi_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_jcfi_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
