# Empty dependencies file for fig11_jcfi_split.
# This may be replaced when dependencies are built.
