# Empty compiler generated dependencies file for fig13_static_air.
# This may be replaced when dependencies are built.
