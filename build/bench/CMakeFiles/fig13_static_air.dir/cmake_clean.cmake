file(REMOVE_RECURSE
  "CMakeFiles/fig13_static_air.dir/fig13_static_air.cpp.o"
  "CMakeFiles/fig13_static_air.dir/fig13_static_air.cpp.o.d"
  "fig13_static_air"
  "fig13_static_air.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_static_air.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
