# Empty dependencies file for fig07_jasan_overhead.
# This may be replaced when dependencies are built.
