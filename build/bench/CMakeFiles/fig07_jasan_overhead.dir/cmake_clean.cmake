file(REMOVE_RECURSE
  "CMakeFiles/fig07_jasan_overhead.dir/fig07_jasan_overhead.cpp.o"
  "CMakeFiles/fig07_jasan_overhead.dir/fig07_jasan_overhead.cpp.o.d"
  "fig07_jasan_overhead"
  "fig07_jasan_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_jasan_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
