# Empty compiler generated dependencies file for fig14_dynamic_coverage.
# This may be replaced when dependencies are built.
