file(REMOVE_RECURSE
  "CMakeFiles/fig14_dynamic_coverage.dir/fig14_dynamic_coverage.cpp.o"
  "CMakeFiles/fig14_dynamic_coverage.dir/fig14_dynamic_coverage.cpp.o.d"
  "fig14_dynamic_coverage"
  "fig14_dynamic_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dynamic_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
