# Empty dependencies file for jz_bench_harness.
# This may be replaced when dependencies are built.
