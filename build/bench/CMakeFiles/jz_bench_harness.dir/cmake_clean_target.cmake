file(REMOVE_RECURSE
  "libjz_bench_harness.a"
)
