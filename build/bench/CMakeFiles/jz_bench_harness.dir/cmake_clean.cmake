file(REMOVE_RECURSE
  "CMakeFiles/jz_bench_harness.dir/Harness.cpp.o"
  "CMakeFiles/jz_bench_harness.dir/Harness.cpp.o.d"
  "libjz_bench_harness.a"
  "libjz_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jz_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
