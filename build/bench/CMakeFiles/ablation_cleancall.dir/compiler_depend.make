# Empty compiler generated dependencies file for ablation_cleancall.
# This may be replaced when dependencies are built.
