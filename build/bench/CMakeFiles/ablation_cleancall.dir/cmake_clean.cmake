file(REMOVE_RECURSE
  "CMakeFiles/ablation_cleancall.dir/ablation_cleancall.cpp.o"
  "CMakeFiles/ablation_cleancall.dir/ablation_cleancall.cpp.o.d"
  "ablation_cleancall"
  "ablation_cleancall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cleancall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
