# Empty compiler generated dependencies file for fig09_jcfi_overhead.
# This may be replaced when dependencies are built.
