# Empty compiler generated dependencies file for fig12_dynamic_air.
# This may be replaced when dependencies are built.
