file(REMOVE_RECURSE
  "CMakeFiles/fig12_dynamic_air.dir/fig12_dynamic_air.cpp.o"
  "CMakeFiles/fig12_dynamic_air.dir/fig12_dynamic_air.cpp.o.d"
  "fig12_dynamic_air"
  "fig12_dynamic_air.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dynamic_air.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
