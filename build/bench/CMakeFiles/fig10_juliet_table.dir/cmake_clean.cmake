file(REMOVE_RECURSE
  "CMakeFiles/fig10_juliet_table.dir/fig10_juliet_table.cpp.o"
  "CMakeFiles/fig10_juliet_table.dir/fig10_juliet_table.cpp.o.d"
  "fig10_juliet_table"
  "fig10_juliet_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_juliet_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
