# Empty compiler generated dependencies file for fig10_juliet_table.
# This may be replaced when dependencies are built.
