# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cfi_hijack_demo "/root/repo/build/examples/cfi_hijack_demo")
set_tests_properties(example_cfi_hijack_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sandbox_dlopen_jit "/root/repo/build/examples/sandbox_dlopen_jit")
set_tests_properties(example_sandbox_dlopen_jit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_tool_plugin "/root/repo/build/examples/custom_tool_plugin")
set_tests_properties(example_custom_tool_plugin PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
