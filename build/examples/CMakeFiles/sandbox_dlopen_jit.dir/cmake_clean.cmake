file(REMOVE_RECURSE
  "CMakeFiles/sandbox_dlopen_jit.dir/sandbox_dlopen_jit.cpp.o"
  "CMakeFiles/sandbox_dlopen_jit.dir/sandbox_dlopen_jit.cpp.o.d"
  "sandbox_dlopen_jit"
  "sandbox_dlopen_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandbox_dlopen_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
