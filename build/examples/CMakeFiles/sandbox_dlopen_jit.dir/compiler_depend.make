# Empty compiler generated dependencies file for sandbox_dlopen_jit.
# This may be replaced when dependencies are built.
