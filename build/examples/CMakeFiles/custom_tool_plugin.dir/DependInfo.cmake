
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_tool_plugin.cpp" "examples/CMakeFiles/custom_tool_plugin.dir/custom_tool_plugin.cpp.o" "gcc" "examples/CMakeFiles/custom_tool_plugin.dir/custom_tool_plugin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/jz_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/jz_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/jcfi/CMakeFiles/jz_jcfi.dir/DependInfo.cmake"
  "/root/repo/build/src/jasan/CMakeFiles/jz_jasan.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dbi/CMakeFiles/jz_dbi.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/jz_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/jz_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/jz_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jz_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/jz_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/jasm/CMakeFiles/jz_jasm.dir/DependInfo.cmake"
  "/root/repo/build/src/jelf/CMakeFiles/jz_jelf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/jz_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jz_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
