file(REMOVE_RECURSE
  "CMakeFiles/cfi_hijack_demo.dir/cfi_hijack_demo.cpp.o"
  "CMakeFiles/cfi_hijack_demo.dir/cfi_hijack_demo.cpp.o.d"
  "cfi_hijack_demo"
  "cfi_hijack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfi_hijack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
