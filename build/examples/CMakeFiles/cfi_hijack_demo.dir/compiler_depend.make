# Empty compiler generated dependencies file for cfi_hijack_demo.
# This may be replaced when dependencies are built.
